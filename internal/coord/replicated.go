package coord

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dlfs/internal/consensus"
	"dlfs/internal/metrics"
)

// This file is the replicated control plane: the same collective
// protocol as the classic Server, but backed by a Raft log so a
// 3-replica coordinator set survives the death of its leader
// (DESIGN.md §13). Every state transition that must be agreed on —
// barrier arrivals, allgather contributions, rank loss, and elastic
// membership changes — is a command in the log; the leader's client
// handlers merely propose commands and wait for the replicated state
// machine to show the result. Completed collectives stay in the FSM, so
// a client that resubmits after a failover gets the stored answer
// instead of wedging the survivors (commands are idempotent).
//
// Replica traffic shares the client listener: the accept loop peeks the
// first four bytes and routes Raft's "DLRF" magic to the consensus
// transport and the coordinator's "DLCO" magic to the client protocol.

// Command kinds in the Raft log.
const (
	cmdBarrier byte = iota + 1
	cmdGather
	cmdRankLost
	cmdJoin
	cmdDepart
)

// raftCmd is one replicated coordinator command (gob-encoded).
type raftCmd struct {
	Kind   byte
	Name   string
	Rank   int
	Blob   []byte
	Cut    uint64
	Reason string
}

func encodeCmd(c raftCmd) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		panic("coord: encode command: " + err.Error())
	}
	return buf.Bytes()
}

// rankBlob tags an allgather contribution with its rank, so a completed
// gather stays well-defined when membership is not 0..world-1.
type rankBlob struct {
	Rank int
	Blob []byte
}

// lostState records the poison after a rank is declared lost.
type lostState struct {
	Lost   bool
	Rank   int
	Reason string
}

// fsmState is the replicated coordinator state. All fields are exported
// for gob snapshots; every mutation happens in Apply, deterministically
// from the log, so all replicas agree on it.
type fsmState struct {
	World        int          // initial world size (blob-set sizing floor)
	Epoch        uint64       // placement epoch, bumped on membership change
	Members      map[int]bool // ranks currently in the job
	Barriers     map[string]map[int]bool
	DoneBarriers map[string]bool
	Gathers      map[string]map[int][]byte
	DoneGathers  map[string][]rankBlob
	Failed       lostState
	DepartRank   int // last departed rank, -1 when none
	DepartCut    uint64
}

func newFSMState(world int) fsmState {
	members := make(map[int]bool, world)
	for r := 0; r < world; r++ {
		members[r] = true
	}
	return fsmState{
		World:        world,
		Epoch:        1,
		Members:      members,
		Barriers:     make(map[string]map[int]bool),
		DoneBarriers: make(map[string]bool),
		Gathers:      make(map[string]map[int][]byte),
		DoneGathers:  make(map[string][]rankBlob),
		DepartRank:   -1,
	}
}

// coordFSM wraps fsmState with the notification machinery waiters use.
type coordFSM struct {
	mu     sync.Mutex
	st     fsmState
	notify chan struct{} // closed and replaced after every apply
}

func newCoordFSM(world int) *coordFSM {
	return &coordFSM{st: newFSMState(world), notify: make(chan struct{})}
}

// waitCh returns a channel closed at the next state change.
func (f *coordFSM) waitCh() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.notify
}

func (f *coordFSM) bumpLocked() {
	close(f.notify)
	f.notify = make(chan struct{})
}

// Apply is the deterministic state transition for one committed command.
func (f *coordFSM) Apply(e consensus.Entry) {
	if len(e.Data) == 0 {
		return // leader no-op entry
	}
	var c raftCmd
	if err := gob.NewDecoder(bytes.NewReader(e.Data)).Decode(&c); err != nil {
		return // never committed by our own code; ignore rather than diverge
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	defer f.bumpLocked()
	switch c.Kind {
	case cmdBarrier:
		if f.st.Failed.Lost || f.st.DoneBarriers[c.Name] {
			return
		}
		b := f.st.Barriers[c.Name]
		if b == nil {
			b = make(map[int]bool)
			f.st.Barriers[c.Name] = b
		}
		b[c.Rank] = true
		f.completeLocked(c.Name)
	case cmdGather:
		if f.st.Failed.Lost || f.st.DoneGathers[c.Name] != nil {
			return
		}
		g := f.st.Gathers[c.Name]
		if g == nil {
			g = make(map[int][]byte)
			f.st.Gathers[c.Name] = g
		}
		if _, dup := g[c.Rank]; !dup { // resubmission after failover keeps the first blob
			g[c.Rank] = append([]byte(nil), c.Blob...)
		}
		f.completeLocked(c.Name)
	case cmdRankLost:
		if f.st.Failed.Lost {
			return
		}
		f.st.Failed = lostState{Lost: true, Rank: c.Rank, Reason: c.Reason}
		delete(f.st.Members, c.Rank)
		f.st.Barriers = make(map[string]map[int]bool)
		f.st.Gathers = make(map[string]map[int][]byte)
	case cmdJoin:
		if f.st.Failed.Lost || f.st.Members[c.Rank] {
			return
		}
		f.st.Members[c.Rank] = true
		f.st.Epoch++
	case cmdDepart:
		if f.st.Failed.Lost || !f.st.Members[c.Rank] {
			return
		}
		delete(f.st.Members, c.Rank)
		f.st.Epoch++
		f.st.DepartRank = c.Rank
		f.st.DepartCut = c.Cut
		// The departed rank may have been the only missing arrival.
		for name := range f.st.Barriers {
			f.completeLocked(name)
		}
		for name := range f.st.Gathers {
			f.completeLocked(name)
		}
	}
}

// completeLocked promotes a pending collective to done once every
// current member has arrived/contributed.
func (f *coordFSM) completeLocked(name string) {
	if b, ok := f.st.Barriers[name]; ok {
		for r := range f.st.Members {
			if !b[r] {
				return
			}
		}
		delete(f.st.Barriers, name)
		f.st.DoneBarriers[name] = true
		return
	}
	if g, ok := f.st.Gathers[name]; ok {
		for r := range f.st.Members {
			if _, has := g[r]; !has {
				return
			}
		}
		delete(f.st.Gathers, name)
		ranks := make([]int, 0, len(g))
		for r := range g {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		done := make([]rankBlob, 0, len(ranks))
		for _, r := range ranks {
			done = append(done, rankBlob{Rank: r, Blob: g[r]})
		}
		f.st.DoneGathers[name] = done
	}
}

// Snapshot serializes the whole replicated state for log compaction.
func (f *coordFSM) Snapshot() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&f.st); err != nil {
		panic("coord: snapshot: " + err.Error())
	}
	return buf.Bytes()
}

// Restore replaces the state from a leader-installed snapshot.
func (f *coordFSM) Restore(data []byte) {
	var st fsmState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return
	}
	f.mu.Lock()
	f.st = st
	f.bumpLocked()
	f.mu.Unlock()
}

// ClusterStatus is what a replica reports about the control plane:
// who leads, which term, the placement epoch, and the membership view.
type ClusterStatus struct {
	Leader     string
	Term       uint64
	Epoch      uint64
	World      int   // current member count
	Members    []int // sorted
	DepartRank int   // last departed rank, -1 when none
	DepartCut  uint64
	Failed     string // poison reason, "" while healthy
}

// ReplicatedOptions tunes one coordinator replica.
type ReplicatedOptions struct {
	// WriteTimeout bounds response writes and leader-side waits for a
	// proposed membership change to apply (default 30s).
	WriteTimeout time.Duration
	// RankGrace is how long the leader waits after losing a member
	// connection before declaring the rank dead. It must comfortably
	// cover a client's reconnect after a leader failover (default 2s).
	RankGrace time.Duration
	// ElectionTimeout/HeartbeatInterval/SnapshotThreshold/Seed tune the
	// Raft node (zero values take the consensus package defaults).
	ElectionTimeout   time.Duration
	HeartbeatInterval time.Duration
	SnapshotThreshold int
	Seed              int64
	// Metrics, when set, receives the replica's consensus counters.
	Metrics *metrics.Consensus
	Logf    func(string, ...any)
}

func (o ReplicatedOptions) withDefaults() ReplicatedOptions {
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.RankGrace <= 0 {
		o.RankGrace = 2 * time.Second
	}
	return o
}

// ReplicatedServer is one replica of the coordinator set. All replicas
// host the same listener protocol; only the current Raft leader admits
// ranks and drives collectives, the rest redirect.
type ReplicatedServer struct {
	world int
	self  string
	opt   ReplicatedOptions
	fsm   *coordFSM
	node  *consensus.Node
	tr    *consensus.TCPTransport

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]bool
	clients map[int]net.Conn // live member conns on this (leader) replica
	grace   map[int]*time.Timer
	closed  bool
	wg      sync.WaitGroup
}

// NewReplicatedServer builds a replica identified by self (its
// advertised listen address, which must appear in peers) for a job of
// world ranks. Call Serve with a listener bound to self to start it.
func NewReplicatedServer(world int, self string, peers []string, opt ReplicatedOptions) *ReplicatedServer {
	if world <= 0 {
		panic("coord: non-positive world size")
	}
	opt = opt.withDefaults()
	s := &ReplicatedServer{
		world:   world,
		self:    self,
		opt:     opt,
		fsm:     newCoordFSM(world),
		conns:   make(map[net.Conn]bool),
		clients: make(map[int]net.Conn),
		grace:   make(map[int]*time.Timer),
	}
	var node *consensus.Node
	s.tr = consensus.NewTCPTransport(func(m *consensus.Message) *consensus.Message {
		return node.HandleRPC(m)
	}, 0, 0)
	node = consensus.NewNode(consensus.Config{
		ID:                self,
		Peers:             peers,
		ElectionTimeout:   opt.ElectionTimeout,
		HeartbeatInterval: opt.HeartbeatInterval,
		SnapshotThreshold: opt.SnapshotThreshold,
		Seed:              opt.Seed,
		Metrics:           opt.Metrics,
		Logf:              opt.Logf,
	}, s.fsm, s.tr)
	s.node = node
	return s
}

// ListenReplicated is the one-call constructor dlfsd uses: listen on
// self and start serving both protocols.
func ListenReplicated(world int, self string, peers []string, opt ReplicatedOptions) (*ReplicatedServer, error) {
	ln, err := net.Listen("tcp", self)
	if err != nil {
		return nil, err
	}
	s := NewReplicatedServer(world, self, peers, opt)
	s.Serve(ln)
	return s, nil
}

// StartReplicaSet stands up n replicas on ephemeral loopback ports —
// the listeners are bound first so every replica knows the full peer
// list — and returns them with their addresses. Used by tests and the
// dlfsctl in-process smoke.
func StartReplicaSet(n, world int, opt ReplicatedOptions) ([]*ReplicatedServer, []string, error) {
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				lns[j].Close() //nolint:errcheck
			}
			return nil, nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	srvs := make([]*ReplicatedServer, n)
	for i := 0; i < n; i++ {
		o := opt
		if o.Seed == 0 {
			o.Seed = int64(i + 1)
		} else {
			o.Seed += int64(i)
		}
		srvs[i] = NewReplicatedServer(world, addrs[i], addrs, o)
		srvs[i].Serve(lns[i])
	}
	return srvs, addrs, nil
}

// Serve starts the Raft node and the demuxing accept loop on ln.
func (s *ReplicatedServer) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.node.Start()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if !s.track(c) {
				c.Close() //nolint:errcheck
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer s.untrack(c)
				s.demux(c)
			}()
		}
	}()
}

func (s *ReplicatedServer) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = true
	return true
}

func (s *ReplicatedServer) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Addr reports the advertised address of this replica.
func (s *ReplicatedServer) Addr() string { return s.self }

// World reports the initial job size the replica set was built for.
func (s *ReplicatedServer) World() int { return s.world }

// Leader reports the current leader address and term as this replica
// sees them.
func (s *ReplicatedServer) Leader() (string, uint64) { return s.node.Leader() }

// Status assembles this replica's view of the control plane.
func (s *ReplicatedServer) Status() ClusterStatus {
	leader, term := s.node.Leader()
	s.fsm.mu.Lock()
	st := ClusterStatus{
		Leader:     leader,
		Term:       term,
		Epoch:      s.fsm.st.Epoch,
		World:      len(s.fsm.st.Members),
		DepartRank: s.fsm.st.DepartRank,
		DepartCut:  s.fsm.st.DepartCut,
	}
	for r := range s.fsm.st.Members {
		st.Members = append(st.Members, r)
	}
	if s.fsm.st.Failed.Lost {
		st.Failed = (&PeerLostError{Rank: s.fsm.st.Failed.Rank, Reason: s.fsm.st.Failed.Reason}).Error()
	}
	s.fsm.mu.Unlock()
	sort.Ints(st.Members)
	return st
}

// Close stops the replica: Raft node, transport, listener, and every
// tracked connection.
func (s *ReplicatedServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	for _, t := range s.grace {
		t.Stop()
	}
	s.mu.Unlock()
	s.node.Stop()
	s.tr.Close()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close() //nolint:errcheck
	}
	s.wg.Wait()
	return err
}

// bufferedConn lets the demuxed reader hand already-buffered bytes to
// whichever protocol handler wins the peek.
type bufferedConn struct {
	net.Conn
	r *bufio.Reader
}

func (c bufferedConn) Read(p []byte) (int, error) { return c.r.Read(p) }

// demux peeks the first four bytes of a fresh connection and routes it:
// Raft replica traffic to the consensus transport, everything else to
// the coordinator client protocol.
func (s *ReplicatedServer) demux(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	br := bufio.NewReader(conn)
	magic, err := br.Peek(4)
	if err != nil {
		conn.Close() //nolint:errcheck
		return
	}
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck
	switch binary.LittleEndian.Uint32(magic) {
	case consensus.Magic:
		br.Discard(4) //nolint:errcheck
		s.tr.ServeConn(bufferedConn{Conn: conn, r: br})
	case Magic:
		s.serveClient(bufferedConn{Conn: conn, r: br})
	default:
		conn.Close() //nolint:errcheck
	}
}

// isLeader reports whether this replica currently leads.
func (s *ReplicatedServer) isLeader() bool {
	leader, _ := s.node.Leader()
	return leader == s.self
}

func (s *ReplicatedServer) sendStatus(conn net.Conn) error {
	var buf bytes.Buffer
	st := s.Status()
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout)) //nolint:errcheck
	defer conn.SetWriteDeadline(time.Time{})                  //nolint:errcheck
	return writeFrame(conn, &frame{op: opStatusOK, payload: buf.Bytes()})
}

func (s *ReplicatedServer) sendRedirect(conn net.Conn) {
	leader, _ := s.node.Leader()
	conn.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout))         //nolint:errcheck
	writeFrame(conn, &frame{op: opRedirect, payload: []byte(leader)}) //nolint:errcheck
	conn.SetWriteDeadline(time.Time{})                                //nolint:errcheck
}

func (s *ReplicatedServer) sendAbortFrame(conn net.Conn, rank uint32, reason string) {
	conn.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout))                  //nolint:errcheck
	writeFrame(conn, &frame{op: opAbort, payload: abortPayload(rank, reason)}) //nolint:errcheck
	conn.SetWriteDeadline(time.Time{})                                         //nolint:errcheck
}

// serveClient speaks the coordinator client protocol on one connection.
func (s *ReplicatedServer) serveClient(conn net.Conn) {
	defer conn.Close() //nolint:errcheck
	rank := -1         // joined rank, -1 until opJoin succeeds
	for {
		f, err := readFrame(conn)
		if err != nil {
			if rank >= 0 {
				s.clientGone(rank, conn)
			}
			return
		}
		switch f.op {
		case opStatus:
			if err := s.sendStatus(conn); err != nil {
				if rank >= 0 {
					s.clientGone(rank, conn)
				}
				return
			}
		case opJoin:
			r, ok := s.handleJoin(conn, f)
			if !ok {
				return
			}
			rank = r
		case opBarrier, opGather:
			if rank < 0 {
				s.sendAbortFrame(conn, noRank, "collective before join")
				return
			}
			if !s.runCollective(conn, rank, f) {
				s.forgetClient(rank, conn)
				return
			}
		case opDepart:
			if rank < 0 || len(f.payload) != 8 {
				s.sendAbortFrame(conn, noRank, "bad depart")
				return
			}
			s.handleDepart(conn, rank, binary.LittleEndian.Uint64(f.payload))
			s.forgetClient(rank, conn)
			return
		case opLeave:
			if rank >= 0 {
				s.clientLeave(rank, conn)
			}
			return
		default:
			s.sendAbortFrame(conn, noRank, fmt.Sprintf("unexpected opcode %d", f.op))
			if rank >= 0 {
				s.clientGone(rank, conn)
			}
			return
		}
	}
}

// handleJoin admits a rank on the leader (proposing a membership entry
// when the rank is new) or redirects to the leader.
func (s *ReplicatedServer) handleJoin(conn net.Conn, f *frame) (int, bool) {
	rank := int(f.rank)
	if !s.isLeader() {
		s.sendRedirect(conn)
		return -1, false
	}
	if rank < 0 || f.rank == noRank {
		s.sendAbortFrame(conn, noRank, "invalid rank")
		return -1, false
	}
	s.fsm.mu.Lock()
	failed := s.fsm.st.Failed
	isMember := s.fsm.st.Members[rank]
	s.fsm.mu.Unlock()
	if failed.Lost {
		s.sendAbortFrame(conn, uint32(failed.Rank), failed.Reason)
		return -1, false
	}
	if !isMember {
		// Elastic join: replicate the membership change (bumps the epoch).
		err := s.proposeWait(raftCmd{Kind: cmdJoin, Rank: rank}, func(st *fsmState) bool {
			return st.Members[rank] || st.Failed.Lost
		})
		if err != nil {
			s.sendRedirect(conn)
			return -1, false
		}
	}
	s.mu.Lock()
	if prev, dup := s.clients[rank]; dup && prev != conn {
		s.mu.Unlock()
		s.sendAbortFrame(conn, noRank, fmt.Sprintf("rank %d already joined", rank))
		return -1, false
	}
	s.clients[rank] = conn
	if t := s.grace[rank]; t != nil {
		t.Stop()
		delete(s.grace, rank)
	}
	s.mu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout)) //nolint:errcheck
	err := writeFrame(conn, &frame{op: opJoinOK, rank: uint32(rank)})
	conn.SetWriteDeadline(time.Time{}) //nolint:errcheck
	if err != nil {
		s.clientGone(rank, conn)
		return -1, false
	}
	return rank, true
}

// proposeWait proposes cmd and blocks until pred holds on the local FSM
// (i.e. the entry — or an equivalent one — committed and applied).
func (s *ReplicatedServer) proposeWait(cmd raftCmd, pred func(*fsmState) bool) error {
	check := func() bool {
		s.fsm.mu.Lock()
		defer s.fsm.mu.Unlock()
		return pred(&s.fsm.st)
	}
	if check() {
		return nil
	}
	if _, _, err := s.node.Propose(encodeCmd(cmd)); err != nil {
		return err
	}
	deadline := time.Now().Add(s.opt.WriteTimeout)
	for {
		ch := s.fsm.waitCh()
		if check() {
			return nil
		}
		if s.isClosed() {
			return ErrClosed
		}
		if !s.isLeader() {
			return consensus.ErrNotLeader
		}
		if time.Now().After(deadline) {
			return ErrWaitTimeout
		}
		select {
		case <-ch:
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// isClosed reports whether the replica is shutting down; long waiter
// loops must exit so Close's wg.Wait can finish.
func (s *ReplicatedServer) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// runCollective proposes a barrier arrival or gather contribution and
// waits for the replicated FSM to complete (or poison) it. The return
// value reports whether the connection is still usable.
func (s *ReplicatedServer) runCollective(conn net.Conn, rank int, f *frame) bool {
	var cmd raftCmd
	var name string
	switch f.op {
	case opBarrier:
		n, _, err := unpackName(f.payload)
		if err != nil {
			s.sendAbortFrame(conn, noRank, err.Error())
			return false
		}
		name = n
		cmd = raftCmd{Kind: cmdBarrier, Name: n, Rank: rank}
	case opGather:
		n, blob, err := unpackName(f.payload)
		if err != nil {
			s.sendAbortFrame(conn, noRank, err.Error())
			return false
		}
		name = n
		cmd = raftCmd{Kind: cmdGather, Name: n, Rank: rank, Blob: blob}
	}
	// Skip the proposal when the collective already completed (this is a
	// resubmission after a failover) or the job is poisoned.
	done, failed := s.collectiveState(name, f.op)
	if !done && !failed.Lost {
		if _, _, err := s.node.Propose(encodeCmd(cmd)); err != nil {
			s.sendRedirect(conn)
			return false
		}
	}
	for {
		ch := s.fsm.waitCh()
		done, failed = s.collectiveState(name, f.op)
		if failed.Lost {
			s.sendAbortFrame(conn, uint32(failed.Rank), failed.Reason)
			return true
		}
		if done {
			return s.replyCollective(conn, name, f.op)
		}
		if s.isClosed() {
			return false
		}
		if !s.isLeader() {
			// The proposal may or may not survive the term change; the
			// client re-resolves and resubmits (idempotent either way).
			s.sendRedirect(conn)
			return false
		}
		select {
		case <-ch:
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// collectiveState reports (done, poison) for one named collective.
func (s *ReplicatedServer) collectiveState(name string, op byte) (bool, lostState) {
	s.fsm.mu.Lock()
	defer s.fsm.mu.Unlock()
	if op == opBarrier {
		return s.fsm.st.DoneBarriers[name], s.fsm.st.Failed
	}
	return s.fsm.st.DoneGathers[name] != nil, s.fsm.st.Failed
}

// replyCollective sends the stored completion for name.
func (s *ReplicatedServer) replyCollective(conn net.Conn, name string, op byte) bool {
	var out *frame
	if op == opBarrier {
		out = &frame{op: opRelease, payload: packName(name, nil)}
	} else {
		s.fsm.mu.Lock()
		blobs := s.fsm.st.DoneGathers[name]
		s.fsm.mu.Unlock()
		// name | u32 count | count × (u32 rank | u32 len | blob)
		size := 4
		for _, rb := range blobs {
			size += 8 + len(rb.Blob)
		}
		body := make([]byte, 0, size)
		var w [4]byte
		binary.LittleEndian.PutUint32(w[:], uint32(len(blobs)))
		body = append(body, w[:]...)
		for _, rb := range blobs {
			binary.LittleEndian.PutUint32(w[:], uint32(rb.Rank))
			body = append(body, w[:]...)
			binary.LittleEndian.PutUint32(w[:], uint32(len(rb.Blob)))
			body = append(body, w[:]...)
			body = append(body, rb.Blob...)
		}
		out = &frame{op: opBlobs, payload: packName(name, body)}
	}
	conn.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout)) //nolint:errcheck
	err := writeFrame(conn, out)
	conn.SetWriteDeadline(time.Time{}) //nolint:errcheck
	return err == nil
}

// handleDepart replicates an orderly mid-training departure: the rank
// leaves the membership view, the epoch bumps, and survivors reshard
// from the declared cut.
func (s *ReplicatedServer) handleDepart(conn net.Conn, rank int, cut uint64) {
	if !s.isLeader() {
		s.sendRedirect(conn)
		return
	}
	err := s.proposeWait(raftCmd{Kind: cmdDepart, Rank: rank, Cut: cut}, func(st *fsmState) bool {
		return !st.Members[rank] || st.Failed.Lost
	})
	if err != nil {
		s.sendRedirect(conn)
		return
	}
	s.sendStatus(conn) //nolint:errcheck
}

// forgetClient deregisters a conn without starting a grace timer (the
// rank departed or the conn is being redirected, not lost).
func (s *ReplicatedServer) forgetClient(rank int, conn net.Conn) {
	s.mu.Lock()
	if s.clients[rank] == conn {
		delete(s.clients, rank)
	}
	s.mu.Unlock()
}

// clientLeave handles an orderly opLeave. Leaving while collectives are
// pending is a deliberate walk-out (the classic server's semantics): the
// rank is declared lost immediately so waiters fail fast.
func (s *ReplicatedServer) clientLeave(rank int, conn net.Conn) {
	s.forgetClient(rank, conn)
	s.fsm.mu.Lock()
	pending := len(s.fsm.st.Barriers) > 0 || len(s.fsm.st.Gathers) > 0
	failed := s.fsm.st.Failed.Lost
	member := s.fsm.st.Members[rank]
	s.fsm.mu.Unlock()
	if pending && !failed && member && s.isLeader() {
		s.node.Propose(encodeCmd(raftCmd{ //nolint:errcheck
			Kind: cmdRankLost, Rank: rank, Reason: "left during a collective",
		}))
	}
}

// clientGone handles a lost member connection. The drop is ambiguous —
// the rank may be dead, or it may be reconnecting to a new leader — so
// the leader arms a grace timer and only proposes the rank-lost poison
// if the rank has not re-joined when it fires.
func (s *ReplicatedServer) clientGone(rank int, conn net.Conn) {
	s.mu.Lock()
	if s.closed || s.clients[rank] != conn {
		s.mu.Unlock()
		return
	}
	delete(s.clients, rank)
	if s.grace[rank] == nil {
		s.grace[rank] = time.AfterFunc(s.opt.RankGrace, func() { s.graceExpired(rank) })
	}
	s.mu.Unlock()
}

// graceExpired fires when a dropped rank stayed away for the whole
// grace window: if this replica still leads and the rank is still a
// member, it proposes the poison.
func (s *ReplicatedServer) graceExpired(rank int) {
	s.mu.Lock()
	delete(s.grace, rank)
	_, rejoined := s.clients[rank]
	closed := s.closed
	s.mu.Unlock()
	if closed || rejoined || !s.isLeader() {
		return
	}
	s.fsm.mu.Lock()
	member := s.fsm.st.Members[rank]
	failed := s.fsm.st.Failed.Lost
	s.fsm.mu.Unlock()
	if !member || failed {
		return
	}
	s.node.Propose(encodeCmd(raftCmd{ //nolint:errcheck
		Kind: cmdRankLost, Rank: rank, Reason: "connection lost (grace expired)",
	}))
}
