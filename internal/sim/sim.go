// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock measured in nanoseconds. Work is
// expressed as processes: ordinary Go functions running on goroutines that
// cooperate with the engine so that exactly one process executes at a time.
// A process parks itself by scheduling a wake-up event (Sleep), by waiting
// on a Signal, or by queueing on a Server; the engine then runs the next
// pending event. Events at equal times fire in scheduling order, so a given
// program yields the same trajectory on every run.
//
// The engine is the substrate for every performance experiment in this
// repository: CPU cores, NIC directions, NVMe device channels and copy
// threads are all modeled as Servers, while protocol logic (queue pairs,
// polling loops, kernel I/O paths) runs as processes.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts directly
// from time.Duration.
type Duration = time.Duration

// Infinity is a time later than any event the engine will ever execute.
const Infinity Time = math.MaxInt64

// String formats the time like a time.Duration offset.
func (t Time) String() string { return time.Duration(t).String() }

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	seq     int64
	queue   eventHeap
	procs   int // live processes (running or parked)
	parked  map[*Proc]string
	running *Proc
	stopped bool
	dead    chan struct{}
	isDead  bool
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{parked: make(map[*Proc]string), dead: make(chan struct{})}
}

// procKilled unwinds a process goroutine during Shutdown.
type procKilled struct{}

// Shutdown releases every parked process goroutine so the engine and all
// state its processes capture become garbage-collectable. The engine is
// unusable afterwards. Long-running harnesses that build many engines
// (one per measurement point) must call it; otherwise parked goroutines
// pin whole simulated clusters in memory forever.
func (e *Engine) Shutdown() {
	if e.isDead {
		return
	}
	e.isDead = true
	close(e.dead)
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that would make the clock run backwards.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, e.now))
	}
	e.seq++
	e.queue.pushEvent(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+Time(d), fn) }

// Proc is a simulated process: a goroutine that runs under the engine's
// cooperative scheduler. All Proc methods must be called from the process's
// own goroutine while it is the running process.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool
}

// Name returns the name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs under.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Go starts a new process executing fn. The process begins at the current
// virtual time, after already-scheduled events at this time.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.procs++
	go func() {
		select {
		case <-p.resume: // first activation
		case <-e.dead:
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); ok {
					return // Shutdown unwound this process
				}
				panic(r)
			}
		}()
		fn(p)
		p.done = true
		e.procs--
		p.yield <- struct{}{}
	}()
	e.After(0, func() { e.activate(p) })
	return p
}

// activate hands control to p and blocks until p yields back. Must be
// called from the engine's event loop.
func (e *Engine) activate(p *Proc) {
	prev := e.running
	e.running = p
	delete(e.parked, p)
	p.resume <- struct{}{}
	<-p.yield
	e.running = prev
}

// park yields control back to the engine; the process blocks until its next
// activation. why is recorded for deadlock diagnostics.
func (p *Proc) park(why string) {
	p.eng.parked[p] = why
	p.yield <- struct{}{}
	select {
	case <-p.resume:
	case <-p.eng.dead:
		panic(procKilled{})
	}
}

// Sleep suspends the process for d of virtual time. A non-positive d yields
// to other events at the current time and resumes afterwards.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	e.After(d, func() { e.activate(p) })
	p.park("sleep")
}

// Yield lets every other event scheduled at the current time run before the
// process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Run executes events until the queue is empty or the virtual clock would
// pass until. It returns the virtual time at which it stopped. Processes
// still parked on Signals or Servers when the queue drains are reported by
// Deadlocked.
func (e *Engine) Run(until Time) Time {
	for len(e.queue) > 0 && !e.stopped {
		if e.queue.peek().at > until {
			e.now = until
			return e.now
		}
		ev := e.queue.popEvent()
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunAll executes events until none remain.
func (e *Engine) RunAll() Time { return e.Run(Infinity) }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Deadlocked returns a description of every process that is parked with no
// pending event to wake it, or nil if there are none. Call it after Run
// returns to detect lost wake-ups in models.
func (e *Engine) Deadlocked() []string {
	if len(e.queue) > 0 {
		return nil
	}
	var out []string
	for p, why := range e.parked {
		out = append(out, p.name+": "+why)
	}
	sort.Strings(out)
	return out
}

// Signal is a broadcast condition variable for processes. Waiters park
// until another event calls Broadcast or Wake.
type Signal struct {
	eng     *Engine
	waiters []*Proc
}

// NewSignal returns a Signal bound to e.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Wait parks the calling process until the signal is fired.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park("signal")
}

// Broadcast wakes all current waiters. They resume in wait order at the
// current virtual time.
func (s *Signal) Broadcast() {
	w := s.waiters
	s.waiters = nil
	for _, p := range w {
		proc := p
		s.eng.After(0, func() { s.eng.activate(proc) })
	}
}

// Wake wakes at most n waiters in FIFO order and reports how many it woke.
func (s *Signal) Wake(n int) int {
	if n > len(s.waiters) {
		n = len(s.waiters)
	}
	w := s.waiters[:n]
	s.waiters = append([]*Proc(nil), s.waiters[n:]...)
	for _, p := range w {
		proc := p
		s.eng.After(0, func() { s.eng.activate(proc) })
	}
	return n
}

// Pending reports the number of parked waiters.
func (s *Signal) Pending() int { return len(s.waiters) }

// Server is a FIFO resource with fixed capacity: at most cap processes hold
// a unit at once; the rest queue in arrival order. A CPU core is a Server
// of capacity 1; a pool of k copy threads is a Server of capacity k.
type Server struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*Proc

	// accounting
	busy      Duration // total unit-busy time
	lastEvent Time
	maxQueue  int
}

// NewServer returns a FIFO server with the given capacity (>= 1).
func NewServer(e *Engine, name string, capacity int) *Server {
	if capacity < 1 {
		panic("sim: server capacity must be >= 1")
	}
	return &Server{eng: e, name: name, capacity: capacity}
}

// Name returns the server's name.
func (s *Server) Name() string { return s.name }

// Capacity returns the server's capacity.
func (s *Server) Capacity() int { return s.capacity }

// InUse reports how many units are currently held.
func (s *Server) InUse() int { return s.inUse }

// QueueLen reports how many processes are waiting.
func (s *Server) QueueLen() int { return len(s.waiters) }

func (s *Server) account() {
	now := s.eng.now
	s.busy += Duration(int64(now-s.lastEvent) * int64(s.inUse))
	s.lastEvent = now
}

// Acquire takes one unit, parking the process FIFO if none is free.
func (s *Server) Acquire(p *Proc) {
	if s.inUse < s.capacity {
		s.account()
		s.inUse++
		return
	}
	s.waiters = append(s.waiters, p)
	if len(s.waiters) > s.maxQueue {
		s.maxQueue = len(s.waiters)
	}
	p.park("server " + s.name)
	// Ownership was transferred by Release before we were woken.
}

// TryAcquire takes a unit if one is free without parking; it reports
// whether it succeeded.
func (s *Server) TryAcquire() bool {
	if s.inUse < s.capacity {
		s.account()
		s.inUse++
		return true
	}
	return false
}

// Release returns one unit. If processes are queued, the head waiter
// receives the unit directly and is scheduled to resume.
func (s *Server) Release() {
	if s.inUse <= 0 {
		panic("sim: release of idle server " + s.name)
	}
	if len(s.waiters) > 0 {
		// Hand the unit straight to the next waiter: inUse is unchanged.
		p := s.waiters[0]
		s.waiters = append([]*Proc(nil), s.waiters[1:]...)
		s.eng.After(0, func() { s.eng.activate(p) })
		return
	}
	s.account()
	s.inUse--
}

// Use acquires a unit, holds it for d, then releases it: the basic
// "occupy this resource for this long" operation.
func (s *Server) Use(p *Proc, d Duration) {
	s.Acquire(p)
	p.Sleep(d)
	s.Release()
}

// Utilization reports the time-average fraction of capacity in use up to
// the current virtual time.
func (s *Server) Utilization() float64 {
	s.account()
	elapsed := int64(s.eng.now)
	if elapsed == 0 {
		return 0
	}
	return float64(s.busy) / float64(elapsed) / float64(s.capacity)
}

// MaxQueue reports the longest queue observed.
func (s *Server) MaxQueue() int { return s.maxQueue }

// WaitGroup counts outstanding work and lets processes wait for it to
// drain, like sync.WaitGroup but under virtual time.
type WaitGroup struct {
	n   int
	sig *Signal
}

// NewWaitGroup returns a WaitGroup bound to e.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{sig: NewSignal(e)} }

// Add adds delta to the counter.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.sig.Broadcast()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Count reports the current counter value.
func (wg *WaitGroup) Count() int { return wg.n }

// Wait parks until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.n > 0 {
		wg.sig.Wait(p)
	}
}

// Queue is an unbounded FIFO of items with blocking receive, the DES
// analogue of a buffered channel. Senders never block.
type Queue[T any] struct {
	items  []T
	sig    *Signal
	closed bool
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Engine) *Queue[T] { return &Queue[T]{sig: NewSignal(e)} }

// Push appends an item and wakes one waiting receiver.
func (q *Queue[T]) Push(v T) {
	if q.closed {
		panic("sim: push to closed queue")
	}
	q.items = append(q.items, v)
	q.sig.Wake(1)
}

// Close marks the queue closed; receivers drain remaining items and then
// see ok == false.
func (q *Queue[T]) Close() {
	q.closed = true
	q.sig.Broadcast()
}

// Pop removes the head item, parking while the queue is empty. ok is false
// only when the queue is closed and drained.
func (q *Queue[T]) Pop(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.sig.Wait(p)
	}
	v = q.items[0]
	q.items = append([]T(nil), q.items[1:]...)
	return v, true
}

// TryPop removes the head item without parking.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v = q.items[0]
	q.items = append([]T(nil), q.items[1:]...)
	return v, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
