package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, func() {})
	})
	e.RunAll()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(100, func() { fired++ })
	now := e.Run(50)
	if fired != 1 || now != 50 {
		t.Fatalf("fired=%d now=%v, want 1, 50", fired, now)
	}
	e.RunAll()
	if fired != 2 {
		t.Fatalf("fired=%d, want 2", fired)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var marks []Time
	e.Go("p", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Sleep(100)
		marks = append(marks, p.Now())
		p.Sleep(50)
		marks = append(marks, p.Now())
	})
	e.RunAll()
	want := []Time{0, 100, 150}
	if len(marks) != 3 {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		e.Go("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "a")
				p.Sleep(10)
			}
		})
		e.Go("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "b")
				p.Sleep(10)
			}
		})
		e.RunAll()
		return log
	}
	first := run()
	for i := 0; i < 20; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("nondeterministic length")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d diverged at %d: %v vs %v", i, j, first, again)
			}
		}
	}
}

func TestServerFIFOAndCapacity(t *testing.T) {
	e := NewEngine()
	srv := NewServer(e, "cpu", 2)
	var order []int
	var finish []Time
	for i := 0; i < 5; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			srv.Acquire(p)
			order = append(order, i)
			p.Sleep(100)
			srv.Release()
			finish = append(finish, p.Now())
		})
	}
	e.RunAll()
	for i := range order {
		if order[i] != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
	// Capacity 2, 5 jobs of 100ns: finish times 100,100,200,200,300.
	want := []Time{100, 100, 200, 200, 300}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if srv.InUse() != 0 {
		t.Fatalf("server still in use: %d", srv.InUse())
	}
	if srv.MaxQueue() != 3 {
		t.Fatalf("MaxQueue = %d, want 3", srv.MaxQueue())
	}
}

func TestServerHandoffKeepsUnitAccounted(t *testing.T) {
	e := NewEngine()
	srv := NewServer(e, "s", 1)
	var held []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			srv.Acquire(p)
			held = append(held, srv.InUse())
			_ = i
			p.Sleep(10)
			srv.Release()
		})
	}
	e.RunAll()
	for _, h := range held {
		if h != 1 {
			t.Fatalf("InUse during hold = %v, want all 1", held)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine()
	srv := NewServer(e, "s", 1)
	if !srv.TryAcquire() {
		t.Fatal("first TryAcquire should succeed")
	}
	if srv.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	srv.Release()
	if !srv.TryAcquire() {
		t.Fatal("TryAcquire after release should succeed")
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on idle release")
		}
	}()
	e := NewEngine()
	NewServer(e, "s", 1).Release()
}

func TestServerUtilization(t *testing.T) {
	e := NewEngine()
	srv := NewServer(e, "s", 1)
	e.Go("w", func(p *Proc) {
		srv.Use(p, 50)
		p.Sleep(50)
	})
	e.RunAll()
	u := srv.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestSignalBroadcastAndWake(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	woken := 0
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	e.At(10, func() {
		if n := sig.Wake(2); n != 2 {
			t.Errorf("Wake(2) = %d", n)
		}
	})
	e.At(20, func() { sig.Broadcast() })
	e.RunAll()
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
	if sig.Pending() != 0 {
		t.Fatalf("pending = %d", sig.Pending())
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	wg.Add(3)
	doneAt := Time(-1)
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		e.Go("worker", func(p *Proc) {
			p.Sleep(Duration(i * 100))
			wg.Done()
		})
	}
	e.RunAll()
	if doneAt != 300 {
		t.Fatalf("waiter resumed at %v, want 300", doneAt)
	}
}

func TestQueueFIFOAndClose(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Pop(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Push(i)
			p.Sleep(10)
		}
		q.Close()
	})
	e.RunAll()
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("got %v, want FIFO 0..4", got)
		}
	}
	if dl := e.Deadlocked(); dl != nil {
		t.Fatalf("deadlocked: %v", dl)
	}
}

func TestQueueTryPop(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string](e)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty should fail")
	}
	q.Push("x")
	v, ok := q.TryPop()
	if !ok || v != "x" {
		t.Fatalf("TryPop = %q,%v", v, ok)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	e.Go("stuck", func(p *Proc) { sig.Wait(p) })
	e.RunAll()
	dl := e.Deadlocked()
	if len(dl) != 1 {
		t.Fatalf("Deadlocked = %v, want one entry", dl)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++; e.Stop() })
	e.At(2, func() { ran++ })
	e.RunAll()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 after Stop", ran)
	}
}

// Property: for any set of scheduled delays, events fire in nondecreasing
// time order and the clock ends at the max delay.
func TestEventTimeMonotoneProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var seen []Time
		var maxT Time
		for _, d := range delays {
			at := Time(d)
			if at > maxT {
				maxT = at
			}
			e.At(at, func() { seen = append(seen, e.Now()) })
		}
		e.RunAll()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FIFO server of any capacity preserves arrival order of
// service starts.
func TestServerFIFOProperty(t *testing.T) {
	f := func(capRaw uint8, jobs uint8) bool {
		capacity := int(capRaw%8) + 1
		n := int(jobs%32) + 1
		e := NewEngine()
		srv := NewServer(e, "s", capacity)
		rng := rand.New(rand.NewSource(int64(capRaw)*31 + int64(jobs)))
		var starts []int
		for i := 0; i < n; i++ {
			i := i
			hold := Duration(rng.Intn(50) + 1)
			e.Go("j", func(p *Proc) {
				srv.Acquire(p)
				starts = append(starts, i)
				p.Sleep(hold)
				srv.Release()
			})
		}
		e.RunAll()
		if len(starts) != n {
			return false
		}
		for i := range starts {
			if starts[i] != i {
				return false
			}
		}
		return srv.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUseHoldsForDuration(t *testing.T) {
	e := NewEngine()
	srv := NewServer(e, "s", 1)
	var t1, t2 Time
	e.Go("a", func(p *Proc) { srv.Use(p, 100); t1 = p.Now() })
	e.Go("b", func(p *Proc) { srv.Use(p, 100); t2 = p.Now() })
	e.RunAll()
	if t1 != 100 || t2 != 200 {
		t.Fatalf("t1=%v t2=%v, want 100, 200", t1, t2)
	}
}

func TestDurationIsTimeDuration(t *testing.T) {
	var d Duration = 5 * time.Microsecond
	e := NewEngine()
	e.Go("p", func(p *Proc) { p.Sleep(d) })
	e.RunAll()
	if e.Now() != Time(5*time.Microsecond) {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestShutdownReleasesParkedProcs(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	done := make(chan struct{})
	for i := 0; i < 3; i++ {
		e.Go("stuck", func(p *Proc) {
			defer func() { done <- struct{}{} }()
			sig.Wait(p) // never signalled
		})
	}
	e.RunAll()
	e.Shutdown()
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("parked goroutine not released by Shutdown")
		}
	}
	e.Shutdown() // idempotent
}

func TestShutdownReleasesNeverActivatedProcs(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Go("never", func(p *Proc) { ran = true })
	// Do not run the engine at all.
	e.Shutdown()
	if ran {
		t.Fatal("process ran without engine")
	}
}
