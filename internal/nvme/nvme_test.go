package nvme

import (
	"bytes"
	"testing"
	"time"

	"dlfs/internal/dataset"
	"dlfs/internal/sim"
)

func testSpec() Spec {
	return Spec{
		Name:          "test",
		Capacity:      1 << 30,
		ReadLatency:   sim.Duration(10 * time.Microsecond),
		WriteLatency:  sim.Duration(12 * time.Microsecond),
		ReadBandwidth: 2_400_000_000,
		CmdOverhead:   sim.Duration(1600 * time.Nanosecond),
		Channels:      8,
		MediaBlock:    4096,
	}
}

func TestSyncWriteRead(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, testSpec())
	data := []byte("the quick brown fox")
	e.Go("io", func(p *sim.Proc) {
		if err := d.SyncIO(p, &Command{Op: OpWrite, Offset: 8192, Buf: data}); err != nil {
			t.Error(err)
		}
		got := make([]byte, len(data))
		if err := d.SyncIO(p, &Command{Op: OpRead, Offset: 8192, Buf: got}); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("got %q", got)
		}
	})
	e.RunAll()
	if e.Now() == 0 {
		t.Fatal("I/O took no virtual time")
	}
}

func TestSingleReadLatency(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, testSpec())
	var took sim.Time
	e.Go("io", func(p *sim.Proc) {
		start := p.Now()
		buf := make([]byte, 4096)
		d.SyncIO(p, &Command{Op: OpRead, Offset: 0, Buf: buf}) //nolint:errcheck
		took = p.Now() - start
	})
	e.RunAll()
	// 1.6µs cmd + 10µs media + 4K/2.4GB/s ≈ 1.7µs transfer ≈ 13.3µs.
	want := sim.Time(13300)
	if took < want-500 || took > want+500 {
		t.Fatalf("single 4K read took %v, want ≈13.3µs", took)
	}
}

func TestQueueDepthEnforced(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, testSpec())
	q := d.AllocQPair(4)
	e.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if err := q.Submit(&Command{Op: OpRead, Offset: int64(i) * 4096, Buf: make([]byte, 4096)}); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}
		if err := q.Submit(&Command{Op: OpRead, Buf: make([]byte, 4096)}); err != ErrQueueFull {
			t.Errorf("5th submit: %v, want ErrQueueFull", err)
		}
		if q.Inflight() != 4 || q.Depth() != 4 {
			t.Errorf("inflight=%d depth=%d", q.Inflight(), q.Depth())
		}
		// Busy-poll until all four complete.
		done := 0
		for done < 4 {
			done += len(q.Poll(16))
			p.Sleep(200)
		}
		if q.Inflight() != 0 {
			t.Errorf("inflight after drain = %d", q.Inflight())
		}
		// Queue has room again.
		if err := q.Submit(&Command{Op: OpRead, Buf: make([]byte, 512)}); err != nil {
			t.Errorf("resubmit: %v", err)
		}
	})
	e.RunAll()
}

func TestPollMaxAndCtx(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, testSpec())
	q := d.AllocQPair(16)
	e.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			q.Submit(&Command{Op: OpRead, Offset: 0, Buf: make([]byte, 512), Ctx: i}) //nolint:errcheck
		}
		p.Sleep(sim.Duration(time.Millisecond))
		first := q.Poll(2)
		if len(first) != 2 {
			t.Errorf("Poll(2) = %d", len(first))
		}
		rest := q.Poll(0) // 0 means all
		if len(rest) != 4 {
			t.Errorf("Poll(0) = %d", len(rest))
		}
		if first[0].Cmd.Ctx.(int) != 0 {
			t.Errorf("ctx order: %v", first[0].Cmd.Ctx)
		}
	})
	e.RunAll()
}

// Concurrent 4K reads should reach the device's IOPS envelope:
// min(channels/(cmd+lat), bw/4K) ≈ min(690K, 586K) ≈ 586K IOPS.
func TestRandomReadIOPSEnvelope(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, testSpec())
	q := d.AllocQPair(128)
	const n = 4000
	e.Go("driver", func(p *sim.Proc) {
		submitted, done := 0, 0
		for done < n {
			for submitted < n && q.Submit(&Command{Op: OpRead, Offset: int64(submitted%1000) * 4096, Buf: make([]byte, 4096)}) == nil {
				submitted++
			}
			done += len(q.Poll(0))
			p.Sleep(200)
		}
	})
	e.RunAll()
	iops := float64(n) / (float64(e.Now()) / 1e9)
	if iops < 400_000 || iops > 700_000 {
		t.Fatalf("4K random read IOPS = %.0f, want 400K-700K", iops)
	}
}

// Large sequential reads should saturate bandwidth, not latency.
func TestLargeReadBandwidthBound(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, testSpec())
	q := d.AllocQPair(64)
	const n = 200
	const sz = 1 << 20
	buf := make([]byte, sz)
	e.Go("driver", func(p *sim.Proc) {
		submitted, done := 0, 0
		for done < n {
			for submitted < n && q.Inflight() < q.Depth() {
				if q.Submit(&Command{Op: OpRead, Offset: int64(submitted) * sz, Buf: buf}) != nil {
					break
				}
				submitted++
			}
			done += len(q.Poll(0))
			p.Sleep(1000)
		}
	})
	e.RunAll()
	bps := float64(n*sz) / (float64(e.Now()) / 1e9)
	if bps < 2.1e9 || bps > 2.5e9 {
		t.Fatalf("1MiB read bandwidth = %.2f GB/s, want ≈2.4", bps/1e9)
	}
	if u := d.BandwidthUtilization(); u < 0.9 {
		t.Fatalf("data path utilization %.2f, want >0.9", u)
	}
}

func TestMediaSpanRounding(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, testSpec())
	cases := []struct {
		off  int64
		n    int
		want int64
	}{
		{0, 1, 4096},
		{0, 4096, 4096},
		{1, 4096, 8192},
		{4095, 2, 8192},
		{4096, 4096, 4096},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := d.mediaSpan(c.off, c.n); got != c.want {
			t.Errorf("mediaSpan(%d,%d) = %d, want %d", c.off, c.n, got, c.want)
		}
	}
}

func TestStats(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, testSpec())
	e.Go("io", func(p *sim.Proc) {
		d.SyncIO(p, &Command{Op: OpWrite, Offset: 0, Buf: make([]byte, 100)}) //nolint:errcheck
		d.SyncIO(p, &Command{Op: OpRead, Offset: 0, Buf: make([]byte, 50)})   //nolint:errcheck
	})
	e.RunAll()
	cmds, br, bw := d.Stats()
	if cmds != 2 || br != 50 || bw != 100 {
		t.Fatalf("stats = %d %d %d", cmds, br, bw)
	}
}

func TestDatasetUploadReadBack(t *testing.T) {
	// End-to-end: upload a dataset through write commands, read samples
	// back through the queue pair, verify checksums.
	e := sim.NewEngine()
	d := NewDevice(e, testSpec())
	ds := dataset.Generate(dataset.Config{Label: "t", Seed: 3, NumSamples: 32, Dist: dataset.Fixed(8000)})
	offsets := make([]int64, ds.Len())
	e.Go("mount", func(p *sim.Proc) {
		var off int64
		for i := 0; i < ds.Len(); i++ {
			offsets[i] = off
			content := ds.Content(i)
			if err := d.SyncIO(p, &Command{Op: OpWrite, Offset: off, Buf: content}); err != nil {
				t.Error(err)
			}
			off += int64(len(content))
		}
		q := d.AllocQPair(32)
		bufs := make([][]byte, ds.Len())
		for i := range bufs {
			bufs[i] = make([]byte, ds.Samples[i].Size)
			q.Submit(&Command{Op: OpRead, Offset: offsets[i], Buf: bufs[i], Ctx: i}) //nolint:errcheck
		}
		done := 0
		for done < ds.Len() {
			for _, c := range q.Poll(0) {
				i := c.Cmd.Ctx.(int)
				if dataset.ChecksumBytes(bufs[i]) != ds.Checksum(i) {
					t.Errorf("sample %d corrupt after device round trip", i)
				}
				done++
			}
			p.Sleep(500)
		}
	})
	e.RunAll()
}

func TestSpecs(t *testing.T) {
	o := OptaneSpec()
	if o.Capacity != 480<<30 || o.Channels != 8 {
		t.Fatalf("optane spec: %+v", o)
	}
	em := EmulatedSpec()
	if em.Name == o.Name || em.ReadLatency != o.ReadLatency {
		t.Fatalf("emulated spec: %+v", em)
	}
	if OpRead.String() != "read" || OpWrite.String() != "write" || Op(9).String() == "" {
		t.Fatal("op strings")
	}
}

func TestDefaultsApplied(t *testing.T) {
	e := sim.NewEngine()
	d := NewDevice(e, Spec{Name: "d", Capacity: 1 << 20})
	if d.spec.Channels != 1 || d.spec.MediaBlock != 4096 {
		t.Fatalf("defaults: %+v", d.spec)
	}
	q := d.AllocQPair(0)
	if q.Depth() != 128 {
		t.Fatalf("default depth %d", q.Depth())
	}
}
