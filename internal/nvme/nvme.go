// Package nvme models an NVMe SSD under the discrete-event engine: a byte-
// accurate block store fronted by submission/completion queue pairs with a
// configurable service model (media latency, per-command controller
// overhead, internal channel parallelism, shared data bandwidth).
//
// Two device personalities matter for the paper's evaluation:
//
//   - OptaneSpec: the real Intel Optane SSD of the single-node tests
//     (§IV-A): ~10 µs read latency, ~2.4 GB/s, ~550K 4K IOPS.
//   - EmulatedSpec: the RAM-disk-plus-delay emulation the paper uses for
//     every multi-node test (§IV: "we leverage RAMdisk to emulate NVMe SSD
//     devices by adding a delay when accessing the data").
//
// Commands carry real buffers: a read copies bytes out of the store into
// the caller's buffer at completion time, so data integrity is testable
// end to end under simulation.
package nvme

import (
	"errors"
	"fmt"

	"dlfs/internal/blockdev"
	"dlfs/internal/sim"
)

// Spec is the device service model.
type Spec struct {
	Name          string
	Capacity      int64
	ReadLatency   sim.Duration // media access latency per command
	WriteLatency  sim.Duration
	ReadBandwidth int64        // shared data-path bandwidth, bytes/sec
	CmdOverhead   sim.Duration // controller processing per command
	Channels      int          // internal parallelism (concurrent media ops)
	MediaBlock    int          // media access granule, bytes
}

// OptaneSpec models the 480 GB Intel Optane NVMe SSD from the paper's
// testbed: 10 µs latency, 2.4 GB/s reads, ~550-690K small-read IOPS.
func OptaneSpec() Spec {
	return Spec{
		Name:          "optane-480g",
		Capacity:      480 << 30,
		ReadLatency:   10 * 1000, // 10 µs in ns
		WriteLatency:  12 * 1000,
		ReadBandwidth: 2_400_000_000,
		CmdOverhead:   1600, // 1.6 µs
		Channels:      8,
		MediaBlock:    4096,
	}
}

// EmulatedSpec models the paper's RAMdisk-backed emulated NVMe device:
// same nominal latency/bandwidth envelope injected as an artificial delay.
func EmulatedSpec() Spec {
	s := OptaneSpec()
	s.Name = "emulated-nvme"
	s.Capacity = 64 << 30
	return s
}

// Op is a command opcode.
type Op uint8

// Supported opcodes.
const (
	OpRead Op = iota
	OpWrite
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Command is one NVMe command. For reads, Buf receives the data; for
// writes, Buf supplies it. Ctx is an opaque caller cookie returned with
// the completion.
type Command struct {
	Op     Op
	Offset int64
	Buf    []byte
	Ctx    any
}

// Completion reports a finished command.
type Completion struct {
	Cmd *Command
	Err error
	At  sim.Time
}

// Queue is the submit/poll surface shared by local queue pairs and the
// fabric's remote queue pairs: the SPDK I/O QPair abstraction.
type Queue interface {
	// Submit posts a command; it returns ErrQueueFull when the submission
	// queue has no free slot (the caller must poll completions first).
	Submit(cmd *Command) error
	// Poll removes and returns up to max completions (non-blocking).
	Poll(max int) []Completion
	// Depth returns the queue depth.
	Depth() int
	// Inflight returns the number of uncompleted commands.
	Inflight() int
}

// ErrQueueFull reports a submission beyond the queue depth.
var ErrQueueFull = errors.New("nvme: submission queue full")

// Device is a simulated NVMe SSD.
type Device struct {
	eng      *sim.Engine
	spec     Spec
	store    *blockdev.Store
	pipeline *sim.Server // capacity = Channels: cmd processing + media latency
	dataPath *sim.Server // capacity 1: shared bandwidth

	// faultHook, when set, is consulted per command; a non-nil return
	// fails the command after its normal service time (media error, URE).
	faultHook func(*Command) error

	// Stats
	cmds      int64
	bytesRead int64
	bytesWrit int64
}

// NewDevice creates a device with its own backing store.
func NewDevice(e *sim.Engine, spec Spec) *Device {
	if spec.Channels <= 0 {
		spec.Channels = 1
	}
	if spec.MediaBlock <= 0 {
		spec.MediaBlock = 4096
	}
	return &Device{
		eng:      e,
		spec:     spec,
		store:    blockdev.New(spec.Capacity),
		pipeline: sim.NewServer(e, spec.Name+"/pipeline", spec.Channels),
		dataPath: sim.NewServer(e, spec.Name+"/data", 1),
	}
}

// Spec returns the device's service model.
func (d *Device) Spec() Spec { return d.spec }

// Store exposes the backing store (for mount-time uploads and tests).
func (d *Device) Store() *blockdev.Store { return d.store }

// Stats reports totals since creation.
func (d *Device) Stats() (cmds, bytesRead, bytesWritten int64) {
	return d.cmds, d.bytesRead, d.bytesWrit
}

// InjectFault installs a per-command fault hook: a non-nil return fails
// that command after its normal service time, modelling media errors.
// Pass nil to clear.
//
// Error-propagation contract: the hook's error becomes the completion
// status of exactly that command — it is not sticky, and later commands
// run the hook afresh. The failed command transfers no data and the
// device stays usable. Callers above the device layer see the failure
// through their own completion path: the core client surfaces it as
// ErrIO from ReadSample or Epoch.Err (never a partially-filled buffer,
// never a cached/V-bit-marked sample), and a fault on a remote node
// rides the simulated NVMe-oF completion back to the reading client
// unchanged. Hooks are called on the simulation goroutine and must not
// block.
func (d *Device) InjectFault(hook func(*Command) error) { d.faultHook = hook }

// BandwidthUtilization reports time-average data-path usage.
func (d *Device) BandwidthUtilization() float64 { return d.dataPath.Utilization() }

// mediaSpan returns the number of media bytes touched by a byte-ranged
// access: NVMe reads whole media blocks.
func (d *Device) mediaSpan(off int64, n int) int64 {
	if n <= 0 {
		return 0
	}
	blk := int64(d.spec.MediaBlock)
	start := off / blk * blk
	end := (off + int64(n) + blk - 1) / blk * blk
	return end - start
}

// execute runs one command to completion under the service model. It is
// called on a device-side process.
func (d *Device) execute(p *sim.Proc, cmd *Command) error {
	lat := d.spec.ReadLatency
	if cmd.Op == OpWrite {
		lat = d.spec.WriteLatency
	}
	// Controller processing + media access occupy one internal channel.
	d.pipeline.Use(p, d.spec.CmdOverhead+lat)
	// Data moves over the shared bandwidth path.
	span := d.mediaSpan(cmd.Offset, len(cmd.Buf))
	if d.spec.ReadBandwidth > 0 && span > 0 {
		xfer := sim.Duration(span * 1e9 / d.spec.ReadBandwidth)
		d.dataPath.Use(p, xfer)
	}
	d.cmds++
	if d.faultHook != nil {
		if err := d.faultHook(cmd); err != nil {
			return err
		}
	}
	switch cmd.Op {
	case OpRead:
		d.bytesRead += int64(len(cmd.Buf))
		_, err := d.store.ReadAt(cmd.Buf, cmd.Offset)
		return err
	case OpWrite:
		d.bytesWrit += int64(len(cmd.Buf))
		_, err := d.store.WriteAt(cmd.Buf, cmd.Offset)
		return err
	default:
		return fmt.Errorf("nvme: unknown opcode %v", cmd.Op)
	}
}

// QPair is a local (PCIe-attached) I/O queue pair.
type QPair struct {
	dev      *Device
	depth    int
	inflight int
	cq       []Completion
}

// AllocQPair creates an I/O queue pair with the given depth.
func (d *Device) AllocQPair(depth int) *QPair {
	if depth <= 0 {
		depth = 128
	}
	return &QPair{dev: d, depth: depth}
}

// Depth implements Queue.
func (q *QPair) Depth() int { return q.depth }

// Inflight implements Queue.
func (q *QPair) Inflight() int { return q.inflight }

// Submit implements Queue: it posts the command and returns immediately;
// the device-side work proceeds as its own process.
func (q *QPair) Submit(cmd *Command) error {
	if q.inflight >= q.depth {
		return ErrQueueFull
	}
	q.inflight++
	q.dev.eng.Go("nvme/"+cmd.Op.String(), func(p *sim.Proc) {
		err := q.dev.execute(p, cmd)
		q.cq = append(q.cq, Completion{Cmd: cmd, Err: err, At: p.Now()})
		q.inflight--
	})
	return nil
}

// Poll implements Queue.
func (q *QPair) Poll(max int) []Completion {
	if max <= 0 || max > len(q.cq) {
		max = len(q.cq)
	}
	out := q.cq[:max]
	q.cq = append([]Completion(nil), q.cq[max:]...)
	return out
}

// SyncIO submits one command on a private path and parks the calling
// process until it completes, returning its error. Used for mount-time
// uploads and simple tests; data-path benchmarks use Submit/Poll.
func (d *Device) SyncIO(p *sim.Proc, cmd *Command) error {
	return d.execute(p, cmd)
}

var _ Queue = (*QPair)(nil)
