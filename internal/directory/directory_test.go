package directory

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"dlfs/internal/sample"
)

func mkEntry(t *testing.T, nid uint16, key uint64, off int64, ln int32) sample.Entry {
	t.Helper()
	e, err := sample.NewEntry(nid, key, off, ln)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestHomeNodeInRangeAndBalanced(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		counts := make([]int, n)
		for i := 0; i < 16000; i++ {
			key := sample.KeyOf(fmt.Sprintf("s%d", i))
			nid := HomeNode(key, n)
			if int(nid) >= n {
				t.Fatalf("HomeNode out of range: %d/%d", nid, n)
			}
			counts[nid]++
		}
		want := 16000 / n
		for nid, c := range counts {
			if c < want/2 || c > want*2 {
				t.Fatalf("n=%d node %d has %d of 16000 (want ~%d)", n, nid, c, want)
			}
		}
	}
}

func TestHomeNodePanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	HomeNode(1, 0)
}

func TestPartitionAddLookup(t *testing.T) {
	p := NewPartition(3)
	for i := 0; i < 100; i++ {
		if err := p.Add(mkEntry(t, 3, uint64(i*17+1), int64(i)*4096, 512)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 100 || p.NID() != 3 {
		t.Fatal("len/nid")
	}
	e, ref, depth, ok := p.Lookup(17 + 1)
	if !ok || e.Offset() != 4096 || depth < 1 {
		t.Fatalf("lookup: %v ok=%v depth=%d", e, ok, depth)
	}
	if p.At(ref.Idx) != e {
		t.Fatal("At(ref) mismatch")
	}
	if _, _, _, ok := p.Lookup(999999); ok {
		t.Fatal("found absent key")
	}
	if ok, why := p.CheckInvariants(); !ok {
		t.Fatal(why)
	}
}

func TestPartitionRejectsForeignEntry(t *testing.T) {
	p := NewPartition(1)
	if err := p.Add(mkEntry(t, 2, 5, 0, 1)); err == nil {
		t.Fatal("foreign NID accepted")
	}
}

func TestPartitionRejectsDuplicateKey(t *testing.T) {
	p := NewPartition(0)
	if err := p.Add(mkEntry(t, 0, 5, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(mkEntry(t, 0, 5, 100, 1)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate: %v", err)
	}
}

func TestSetV(t *testing.T) {
	p := NewPartition(0)
	p.Add(mkEntry(t, 0, 5, 0, 1)) //nolint:errcheck
	_, ref, _, _ := p.Lookup(5)
	p.SetV(ref.Idx, true)
	e, _, _, _ := p.Lookup(5)
	if !e.V() {
		t.Fatal("V not set")
	}
	p.SetV(ref.Idx, false)
	e, _, _, _ = p.Lookup(5)
	if e.V() {
		t.Fatal("V not cleared")
	}
}

func TestSelectAscendOrder(t *testing.T) {
	p := NewPartition(0)
	keys := []uint64{50, 10, 30}
	for _, k := range keys {
		p.Add(mkEntry(t, 0, k, int64(k), 1)) //nolint:errcheck
	}
	want := []uint64{10, 30, 50}
	for i, w := range want {
		e, ok := p.Select(i)
		if !ok || e.Key() != w {
			t.Fatalf("Select(%d) = %v,%v", i, e, ok)
		}
	}
	if _, ok := p.Select(3); ok {
		t.Fatal("Select past end")
	}
	var got []uint64
	p.Ascend(func(e sample.Entry) bool { got = append(got, e.Key()); return true })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend order %v", got)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	p := NewPartition(2)
	for i := 0; i < 500; i++ {
		p.Add(mkEntry(t, 2, uint64(i)*3+1, int64(i)*100, int32(i%1000+1))) //nolint:errcheck
	}
	// Set a V bit; it must not survive serialization.
	_, ref, _, _ := p.Lookup(4)
	p.SetV(ref.Idx, true)

	blob := p.Serialize()
	if len(blob) != 500*16 {
		t.Fatalf("blob size %d", len(blob))
	}
	q, err := DeserializePartition(2, blob)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 500 {
		t.Fatalf("deserialized %d entries", q.Len())
	}
	p.Ascend(func(e sample.Entry) bool {
		ge, _, _, ok := q.Lookup(e.Key())
		if !ok || ge.Offset() != e.Offset() || ge.Len() != e.Len() || ge.V() {
			t.Fatalf("entry %v round trip -> %v ok=%v", e, ge, ok)
		}
		return true
	})
}

func TestDeserializeErrors(t *testing.T) {
	if _, err := DeserializePartition(0, []byte{1, 2, 3}); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("short blob: %v", err)
	}
	p := NewPartition(1)
	p.Add(mkEntry(t, 1, 5, 0, 1)) //nolint:errcheck
	blob := p.Serialize()
	if _, err := DeserializePartition(0, blob); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("wrong nid: %v", err)
	}
}

func buildDirectory(t *testing.T, nodes, samplesPerNode int) *Directory {
	t.Helper()
	parts := make([]*Partition, nodes)
	for nid := range parts {
		parts[nid] = NewPartition(uint16(nid))
	}
	count := 0
	i := 0
	for count < nodes*samplesPerNode {
		key := sample.KeyOf(fmt.Sprintf("img%06d", i))
		i++
		nid := HomeNode(key, nodes)
		if parts[nid].Len() >= samplesPerNode {
			continue
		}
		if err := parts[nid].Add(mkEntry(t, nid, key, int64(count)*4096, 2048)); err != nil {
			continue // rare key collision: skip
		}
		count++
	}
	d, err := New(parts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDirectoryLookup(t *testing.T) {
	d := buildDirectory(t, 4, 50)
	if d.NumNodes() != 4 || d.NumSamples() != 200 {
		t.Fatalf("nodes=%d samples=%d", d.NumNodes(), d.NumSamples())
	}
	found := 0
	for i := 0; i < 2000 && found < 100; i++ {
		key := sample.KeyOf(fmt.Sprintf("img%06d", i))
		e, ref, depth, ok := d.Lookup(key)
		if !ok {
			continue
		}
		found++
		if e.Key() != key || depth < 1 {
			t.Fatalf("lookup returned %v depth %d", e, depth)
		}
		if d.At(ref) != e {
			t.Fatal("At(ref)")
		}
		if HomeNode(key, 4) != e.NID() {
			t.Fatal("entry on wrong home node")
		}
	}
	if found == 0 {
		t.Fatal("no lookups succeeded")
	}
}

func TestLookupName(t *testing.T) {
	parts := []*Partition{NewPartition(0)}
	key := sample.KeyOf("a/b.jpg", "class3")
	parts[0].Add(mkEntry(t, 0, key, 10, 20)) //nolint:errcheck
	d, _ := New(parts)
	e, _, _, ok := d.LookupName("a/b.jpg", "class3")
	if !ok || e.Offset() != 10 {
		t.Fatalf("LookupName: %v %v", e, ok)
	}
	if _, _, _, ok := d.LookupName("a/b.jpg"); ok {
		t.Fatal("wrong attrs should miss")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]*Partition{nil}); err == nil {
		t.Fatal("nil partition accepted")
	}
	if _, err := New([]*Partition{NewPartition(1)}); err == nil {
		t.Fatal("misindexed partition accepted")
	}
}

func TestFromBlobsAndFingerprint(t *testing.T) {
	d := buildDirectory(t, 3, 40)
	blobs := make([][]byte, 3)
	for i := 0; i < 3; i++ {
		blobs[i] = d.Partition(uint16(i)).Serialize()
	}
	replica, err := FromBlobs(blobs)
	if err != nil {
		t.Fatal(err)
	}
	if replica.NumSamples() != d.NumSamples() {
		t.Fatal("replica sample count")
	}
	if replica.Fingerprint() != d.Fingerprint() {
		t.Fatal("replica fingerprint differs")
	}
	// V-bit changes do not alter the fingerprint (local state).
	_, ref, _, ok := d.Lookup(d.Partition(0).mustFirstKey())
	if ok {
		d.SetV(ref, true)
		if replica.Fingerprint() != d.Fingerprint() {
			t.Fatal("V bit leaked into fingerprint")
		}
	}
}

// mustFirstKey exposes the smallest key for tests.
func (p *Partition) mustFirstKey() uint64 {
	var k uint64
	p.Ascend(func(e sample.Entry) bool { k = e.Key(); return false })
	return k
}

func TestMemoryBytes(t *testing.T) {
	d := buildDirectory(t, 2, 25)
	if d.MemoryBytes() != 50*16 {
		t.Fatalf("MemoryBytes = %d", d.MemoryBytes())
	}
}

// Property: allgather of disjoint shards equals the union — every entry
// added to any partition is found in the directory rebuilt from blobs.
func TestGatherUnionProperty(t *testing.T) {
	f := func(keysRaw []uint32, nodesRaw uint8) bool {
		nodes := int(nodesRaw%8) + 1
		parts := make([]*Partition, nodes)
		for i := range parts {
			parts[i] = NewPartition(uint16(i))
		}
		inserted := map[uint64]bool{}
		for _, kr := range keysRaw {
			key := uint64(kr)
			if inserted[key] {
				continue
			}
			nid := HomeNode(key, nodes)
			e, err := sample.NewEntry(nid, key, int64(kr%1000)*512, 512)
			if err != nil {
				return false
			}
			if parts[nid].Add(e) != nil {
				return false
			}
			inserted[key] = true
		}
		blobs := make([][]byte, nodes)
		for i, p := range parts {
			blobs[i] = p.Serialize()
		}
		d, err := FromBlobs(blobs)
		if err != nil {
			return false
		}
		if d.NumSamples() != len(inserted) {
			return false
		}
		for key := range inserted {
			if _, _, _, ok := d.Lookup(key); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupAnyFindsOffHomeEntries(t *testing.T) {
	parts := []*Partition{NewPartition(0), NewPartition(1)}
	// Place an entry deliberately on the wrong node (a batched-file entry).
	key := sample.KeyOf("parts/file-0.rec")
	wrong := 1 - HomeNode(key, 2)
	parts[wrong].Add(mkEntry(t, wrong, key, 100, 200)) //nolint:errcheck
	d, _ := New(parts)
	if _, _, _, ok := d.Lookup(key); ok {
		t.Fatal("home-only Lookup should miss an off-home entry")
	}
	e, _, depth, ok := d.LookupAny(key)
	if !ok || e.Offset() != 100 || depth < 1 {
		t.Fatalf("LookupAny: %v ok=%v depth=%d", e, ok, depth)
	}
	if _, _, _, ok := d.LookupAny(key + 1); ok {
		t.Fatal("LookupAny found absent key")
	}
}

// TestFromBlobsErrorPaths pins the allgather-assembly failure modes a
// live multi-node mount depends on: a truncated wire blob, a peer's
// blob landing in the wrong slot (duplicate node ID), a key collision
// smuggled inside one blob, and divergent replicas being caught by the
// fingerprint rather than by FromBlobs itself.
func TestFromBlobsErrorPaths(t *testing.T) {
	d := buildDirectory(t, 3, 20)
	blobs := make([][]byte, 3)
	for i := 0; i < 3; i++ {
		blobs[i] = d.Partition(uint16(i)).Serialize()
	}

	// Truncated blob: a partial 16-byte entry cannot assemble.
	trunc := [][]byte{blobs[0], blobs[1][:len(blobs[1])-7], blobs[2]}
	if _, err := FromBlobs(trunc); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("truncated blob: %v", err)
	}

	// Duplicate node ID: node 0's blob delivered in slot 1 — every
	// entry carries NID 0, which slot 1 must reject.
	dup := [][]byte{blobs[0], blobs[0], blobs[2]}
	if _, err := FromBlobs(dup); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("duplicate node blob: %v", err)
	}

	// Duplicate key within one blob: the tree insert refuses it.
	e := mkEntry(t, 1, 0x42, 0, 16)
	raw := make([]byte, 32)
	binary.LittleEndian.PutUint64(raw[0:8], e.W0)
	binary.LittleEndian.PutUint64(raw[8:16], e.W1)
	copy(raw[16:], raw[:16])
	if _, err := FromBlobs([][]byte{{}, raw, {}}); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate key: %v", err)
	}

	// Fingerprint mismatch between assembled replicas: FromBlobs accepts
	// both (each is internally consistent), and the divergence shows up
	// only in the fingerprint — which is exactly what cluster mount
	// cross-checks.
	full, err := FromBlobs(blobs)
	if err != nil {
		t.Fatal(err)
	}
	short := [][]byte{blobs[0], blobs[1], blobs[2][:len(blobs[2])-16]}
	partial, err := FromBlobs(short)
	if err != nil {
		t.Fatalf("dropped-entry replica should still assemble: %v", err)
	}
	if partial.Fingerprint() == full.Fingerprint() {
		t.Fatal("divergent replicas share a fingerprint")
	}
	if partial.NumSamples() != full.NumSamples()-1 {
		t.Fatalf("partial replica has %d of %d samples", partial.NumSamples(), full.NumSamples())
	}
}
