// Package directory implements the DLFS in-memory tree-based sample
// directory (paper §III-B): an array of balanced AVL trees, one per
// storage node, holding 128-bit sample entries. Each node builds the
// partition for the samples it uploaded, the partitions are exchanged with
// an allgather, and every node ends up with an identical full directory —
// so sample lookup is always local and the NVMe-oF targets see no metadata
// traffic.
//
// Samples are placed on storage nodes by key hash ("according to the file
// name and the number of storage nodes"), so a reader can compute the home
// node of any name without consulting anyone.
package directory

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dlfs/internal/avl"
	"dlfs/internal/sample"
)

// HomeNode returns the storage node a sample key lives on in an n-node
// job: the directory's placement rule.
func HomeNode(key uint64, n int) uint16 {
	if n <= 0 {
		panic("directory: non-positive node count")
	}
	// The key is already a uniform hash of the name; fold the high bits in
	// so small moduli do not bias on low-entropy tails.
	return uint16((key ^ key>>24) % uint64(n))
}

// EntryRef identifies an entry in a directory for O(1) revisits (V-bit
// updates during reads).
type EntryRef struct {
	NID uint16
	Idx int32
}

// Partition is one node's tree: every sample stored on that node.
type Partition struct {
	nid     uint16
	entries []sample.Entry
	tree    avl.Tree[int32] // key -> index into entries
}

// ErrDuplicateKey reports two samples hashing to the same 48-bit key on
// one node; the mount must rename or re-attribute one of them.
var ErrDuplicateKey = errors.New("directory: duplicate sample key in partition")

// NewPartition returns an empty partition for node nid.
func NewPartition(nid uint16) *Partition {
	return &Partition{nid: nid}
}

// NID returns the owning node's ID.
func (p *Partition) NID() uint16 { return p.nid }

// Len reports the number of entries.
func (p *Partition) Len() int { return len(p.entries) }

// Add inserts an entry, which must carry this partition's NID.
func (p *Partition) Add(e sample.Entry) error {
	if e.NID() != p.nid {
		return fmt.Errorf("directory: entry for node %d added to partition %d", e.NID(), p.nid)
	}
	idx := int32(len(p.entries))
	if !p.tree.Insert(e.Key(), idx) {
		return fmt.Errorf("%w: key %#x", ErrDuplicateKey, e.Key())
	}
	p.entries = append(p.entries, e)
	return nil
}

// Lookup finds the entry for key, reporting the tree depth visited (the
// lookup's CPU cost driver).
func (p *Partition) Lookup(key uint64) (sample.Entry, EntryRef, int, bool) {
	idx, ok, depth := p.tree.GetDepth(key)
	if !ok {
		return sample.Entry{}, EntryRef{}, depth, false
	}
	return p.entries[idx], EntryRef{NID: p.nid, Idx: idx}, depth, true
}

// At returns the entry at a ref's index.
func (p *Partition) At(idx int32) sample.Entry { return p.entries[idx] }

// SetV sets or clears the V (in-local-cache) bit of the entry at idx.
// Each node flips V only in its own replica: the paper notes training data
// is read-only, so replicas never need coherence.
func (p *Partition) SetV(idx int32, v bool) {
	p.entries[idx] = p.entries[idx].WithV(v)
}

// Select returns the i-th entry in key order, for rank-based iteration.
func (p *Partition) Select(i int) (sample.Entry, bool) {
	_, idx, ok := p.tree.Select(i)
	if !ok {
		return sample.Entry{}, false
	}
	return p.entries[idx], true
}

// Ascend walks entries in key order.
func (p *Partition) Ascend(fn func(e sample.Entry) bool) {
	p.tree.Ascend(func(_ uint64, idx int32) bool { return fn(p.entries[idx]) })
}

// CheckInvariants verifies the underlying tree.
func (p *Partition) CheckInvariants() (bool, string) { return p.tree.CheckInvariants() }

// entryBytes is the wire size of one serialized entry: the two 64-bit
// words of the packed format — the same 16 bytes/sample the paper's
// memory-budget argument uses.
const entryBytes = 16

// Serialize encodes the partition's entries (in key order, V bits cleared:
// cache state is local and must not replicate).
func (p *Partition) Serialize() []byte {
	out := make([]byte, 0, len(p.entries)*entryBytes)
	var w [entryBytes]byte
	p.Ascend(func(e sample.Entry) bool {
		e = e.WithV(false)
		binary.LittleEndian.PutUint64(w[0:8], e.W0)
		binary.LittleEndian.PutUint64(w[8:16], e.W1)
		out = append(out, w[:]...)
		return true
	})
	return out
}

// ErrCorruptBlob reports a malformed serialized partition.
var ErrCorruptBlob = errors.New("directory: corrupt partition blob")

// DeserializePartition rebuilds a partition from Serialize output.
func DeserializePartition(nid uint16, blob []byte) (*Partition, error) {
	if len(blob)%entryBytes != 0 {
		return nil, ErrCorruptBlob
	}
	p := NewPartition(nid)
	for off := 0; off < len(blob); off += entryBytes {
		e := sample.Entry{
			W0: binary.LittleEndian.Uint64(blob[off : off+8]),
			W1: binary.LittleEndian.Uint64(blob[off+8 : off+16]),
		}
		if e.NID() != nid {
			return nil, fmt.Errorf("%w: entry for node %d in blob of node %d", ErrCorruptBlob, e.NID(), nid)
		}
		if err := p.Add(e); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Directory is the full replicated directory: one partition per storage
// node. Each compute node holds its own Directory value.
type Directory struct {
	parts []*Partition
}

// New assembles a directory from per-node partitions; parts[i] must belong
// to node i.
func New(parts []*Partition) (*Directory, error) {
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("directory: missing partition %d", i)
		}
		if int(p.nid) != i {
			return nil, fmt.Errorf("directory: partition %d has nid %d", i, p.nid)
		}
	}
	return &Directory{parts: parts}, nil
}

// FromBlobs assembles a directory from allgathered serialized partitions.
func FromBlobs(blobs [][]byte) (*Directory, error) {
	parts := make([]*Partition, len(blobs))
	for i, b := range blobs {
		p, err := DeserializePartition(uint16(i), b)
		if err != nil {
			return nil, err
		}
		parts[i] = p
	}
	return New(parts)
}

// NumNodes reports the number of partitions.
func (d *Directory) NumNodes() int { return len(d.parts) }

// NumSamples reports the total entry count.
func (d *Directory) NumSamples() int {
	total := 0
	for _, p := range d.parts {
		total += p.Len()
	}
	return total
}

// Partition returns node nid's tree.
func (d *Directory) Partition(nid uint16) *Partition { return d.parts[nid] }

// Lookup resolves a key: it computes the home node and searches only that
// node's tree. depth is the number of tree nodes visited.
func (d *Directory) Lookup(key uint64) (e sample.Entry, ref EntryRef, depth int, ok bool) {
	nid := HomeNode(key, len(d.parts))
	return d.parts[nid].Lookup(key)
}

// LookupName resolves a sample by name and attributes.
func (d *Directory) LookupName(name string, attrs ...string) (sample.Entry, EntryRef, int, bool) {
	return d.Lookup(sample.KeyOf(name, attrs...))
}

// LookupAny resolves a key that may live outside its hash-home partition —
// batched-file entries are placed on the node that stores the file, not
// where the name hashes. The home partition is probed first, then the
// rest; depth accumulates across all probed trees.
func (d *Directory) LookupAny(key uint64) (e sample.Entry, ref EntryRef, depth int, ok bool) {
	home := HomeNode(key, len(d.parts))
	e, ref, depth, ok = d.parts[home].Lookup(key)
	if ok {
		return e, ref, depth, true
	}
	for nid := range d.parts {
		if uint16(nid) == home {
			continue
		}
		var dd int
		e, ref, dd, ok = d.parts[nid].Lookup(key)
		depth += dd
		if ok {
			return e, ref, depth, true
		}
	}
	return sample.Entry{}, EntryRef{}, depth, false
}

// At dereferences an EntryRef.
func (d *Directory) At(ref EntryRef) sample.Entry { return d.parts[ref.NID].At(ref.Idx) }

// SetV updates the V bit behind a ref in this replica.
func (d *Directory) SetV(ref EntryRef, v bool) { d.parts[ref.NID].SetV(ref.Idx, v) }

// Fingerprint digests all entries (V bits masked); identical replicas have
// identical fingerprints, which mount asserts after the allgather.
func (d *Directory) Fingerprint() uint64 {
	var h uint64 = 14695981039346656037 // FNV offset basis
	for _, p := range d.parts {
		p.Ascend(func(e sample.Entry) bool {
			e = e.WithV(false)
			h = (h ^ e.W0) * 1099511628211
			h = (h ^ e.W1) * 1099511628211
			return true
		})
	}
	return h
}

// MemoryBytes reports the directory's entry memory (16 B per sample), the
// quantity behind the paper's "0.8 GB for 50 million samples" estimate.
func (d *Directory) MemoryBytes() int64 { return int64(d.NumSamples()) * entryBytes }
