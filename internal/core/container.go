package core

import (
	"fmt"

	"dlfs/internal/cluster"
	"dlfs/internal/dataset"
	"dlfs/internal/directory"
	"dlfs/internal/nvme"
	"dlfs/internal/plan"
	"dlfs/internal/sample"
	"dlfs/internal/sim"
	"dlfs/internal/spdk"
)

// MountContainers is dlfs_mount for batched dataset formats (§III-B1):
// each storage node packs its shard into TFRecord-style container files of
// up to perContainer samples, uploads them whole, and indexes *both* every
// individual sample (at its byte-exact payload offset inside the
// container — "we are able to have direct access to any samples in a
// TFRecord file") and the container file itself ("there is also an entry
// taken by the batched file for file-oriented access").
//
// Sample reads and epochs behave exactly as with the plain mount; whole
// containers are additionally readable through ReadWholeFile.
func MountContainers(p *sim.Proc, job *cluster.Job, nodeID int, ds *dataset.Dataset, perContainer int, cfg Config) (*FS, error) {
	cfg = cfg.withDefaults()
	if perContainer <= 0 {
		perContainer = 1000
	}
	node := job.Node(nodeID)
	if node.Device == nil {
		return nil, fmt.Errorf("dlfs: node %d has no NVMe device to mount on", nodeID)
	}
	if int64(cfg.ChunkSize) > cfg.CacheBytes {
		return nil, fmt.Errorf("dlfs: cache (%d) smaller than one chunk (%d)", cfg.CacheBytes, cfg.ChunkSize)
	}
	n := job.N()

	// Identical shard resolution on every node.
	keys := make([]uint64, ds.Len())
	keyToIdx := make(map[uint64]int, ds.Len())
	shardOf := make([][]int, n)
	for i := 0; i < ds.Len(); i++ {
		k := ds.Samples[i].Key()
		if prev, dup := keyToIdx[k]; dup {
			return nil, fmt.Errorf("dlfs: samples %d and %d collide on key %#x", prev, i, k)
		}
		keyToIdx[k] = i
		keys[i] = k
		nid := directory.HomeNode(k, n)
		shardOf[nid] = append(shardOf[nid], i)
	}

	// Build, upload and index this node's containers.
	part := directory.NewPartition(uint16(nodeID))
	var off int64
	myShard := shardOf[nodeID]
	for lo := 0; lo < len(myShard); lo += perContainer {
		hi := lo + perContainer
		if hi > len(myShard) {
			hi = len(myShard)
		}
		name := fmt.Sprintf("%s/node%d/part-%05d.rec", ds.Label, nodeID, lo/perContainer)
		c := dataset.BuildContainer(ds, name, myShard[lo:hi])
		if len(c.Data) > sample.MaxLen {
			return nil, fmt.Errorf("dlfs: container %s (%d bytes) exceeds the 23-bit entry length; lower perContainer", name, len(c.Data))
		}
		if cfg.StageIn != nil {
			// Batched formats stage in as one open + one stream per
			// container instead of one per sample.
			cfg.StageIn.ReadFile(p, int64(len(c.Data)))
		}
		if _, err := node.Device.Store().WriteAt(c.Data, off); err != nil {
			return nil, fmt.Errorf("dlfs: uploading container %s: %w", name, err)
		}
		// Per-sample entries at payload-exact offsets within the container.
		for _, rec := range c.Records {
			e, err := sample.NewEntry(uint16(nodeID), keys[rec.SampleIndex], off+rec.Offset, rec.Length)
			if err != nil {
				return nil, err
			}
			if err := part.Add(e); err != nil {
				return nil, err
			}
		}
		// The batched file's own entry, keyed by its name.
		fileKey := sample.KeyOf(name)
		if _, clash := keyToIdx[fileKey]; clash {
			return nil, fmt.Errorf("dlfs: container name %s collides with a sample key", name)
		}
		fe, err := sample.NewEntry(uint16(nodeID), fileKey, off, int32(len(c.Data)))
		if err != nil {
			return nil, err
		}
		if err := part.Add(fe); err != nil {
			return nil, err
		}
		off += int64(len(c.Data))
	}

	blobs := job.Allgather(p, "dlfs-mount-containers", nodeID, part.Serialize())
	dir, err := directory.FromBlobs(blobs)
	if err != nil {
		return nil, err
	}
	wantEntries := ds.Len()
	for nid := 0; nid < n; nid++ {
		wantEntries += (len(shardOf[nid]) + perContainer - 1) / perContainer
	}
	if dir.NumSamples() != wantEntries {
		return nil, fmt.Errorf("dlfs: directory holds %d entries, want %d (samples + containers)", dir.NumSamples(), wantEntries)
	}

	// Physical layout per dataset index; container entries are recognised
	// by not mapping back to a sample key.
	placed := make([]plan.Placed, ds.Len())
	nodeOf := make([]uint16, ds.Len())
	for nid := 0; nid < n; nid++ {
		dir.Partition(uint16(nid)).Ascend(func(e sample.Entry) bool {
			idx, ok := keyToIdx[e.Key()]
			if !ok {
				return true // a batched-file entry
			}
			placed[idx] = plan.Placed{Sample: idx, Offset: e.Offset(), Len: e.Len()}
			nodeOf[idx] = e.NID()
			return true
		})
	}

	env, err := spdk.NewEnv(job.Engine(), cfg.CacheBytes, cfg.ChunkSize)
	if err != nil {
		return nil, err
	}
	queues := make([]nvme.Queue, n)
	group := spdk.NewPollGroup()
	for nid := 0; nid < n; nid++ {
		var ctrl spdk.Controller
		if nid == nodeID {
			ctrl, err = env.AttachLocal(fmt.Sprintf("node%d", nid), node.Device)
		} else {
			tgt := job.Node(nid).Target
			if tgt == nil {
				return nil, fmt.Errorf("dlfs: node %d exports no NVMe-oF target", nid)
			}
			ctrl, err = env.AttachRemote(fmt.Sprintf("node%d", nid), tgt, nodeID)
		}
		if err != nil {
			return nil, err
		}
		queues[nid] = ctrl.AllocQPair(cfg.QueueDepth)
		group.Add(queues[nid])
	}

	fs := &FS{
		cfg:         cfg,
		node:        node,
		job:         job,
		ds:          ds,
		dir:         dir,
		env:         env,
		arena:       env.Arena(),
		queues:      queues,
		pollGroup:   group,
		keyToIdx:    keyToIdx,
		placedByIdx: placed,
		nodeOfIdx:   nodeOf,
		copyQ:       sim.NewQueue[copyJob](job.Engine()),
		readCache:   make(map[int]*unit),
	}
	fs.startCopyPool()
	job.Barrier(p, "dlfs-mount-containers-done")
	return fs, nil
}

// ReadWholeFile performs a file-oriented read of a batched container (or
// any directory entry by name): a synchronous fetch of the whole byte
// range into buf. It returns the byte count.
func (fs *FS) ReadWholeFile(p *sim.Proc, name string, buf []byte) (int, error) {
	e, _, depth, ok := fs.dir.LookupAny(sample.KeyOf(name))
	fs.stats.LookupVisits += int64(depth)
	fs.node.CPU.Use(p, sim.Duration(depth)*fs.cfg.LookupVisitCPU)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	n := int(e.Len())
	if len(buf) < n {
		return 0, fmt.Errorf("dlfs: buffer %d < file %d", len(buf), n)
	}
	u := &unit{
		node:      e.NID(),
		offset:    e.Offset(),
		length:    e.Len(),
		samples:   []plan.Placed{{Sample: -1, Offset: e.Offset(), Len: e.Len()}},
		remaining: 1,
	}
	fs.node.CPU.Acquire(p)
	if err := fs.postUnit(p, u); err != nil {
		fs.node.CPU.Release()
		return 0, err
	}
	q := fs.queues[u.node]
	for !u.ready {
		fs.handleCompletions(q)
		fs.pollWait(p)
	}
	fs.node.CPU.Release()
	if u.fetchErr != nil {
		for _, c := range u.chunks {
			fs.arena.Free(c) //nolint:errcheck
		}
		return 0, fmt.Errorf("%w: %s: %v", ErrIO, name, u.fetchErr)
	}
	wg := sim.NewWaitGroup(fs.job.Engine())
	wg.Add(1)
	fs.copyQ.Push(copyJob{u: u, p: u.samples[0], dst: buf[:n], wg: wg})
	wg.Wait(p)
	return n, nil
}
