package core

import (
	"fmt"

	"dlfs/internal/directory"
	"dlfs/internal/nvme"
	"dlfs/internal/plan"
	"dlfs/internal/sample"
	"dlfs/internal/sim"
	"dlfs/internal/trace"
)

// Handle is an open sample, the dlfs_open result.
type Handle struct {
	fs    *FS
	idx   int
	entry sample.Entry
	ref   directory.EntryRef
	open  bool
}

// Size returns the sample's length in bytes.
func (h *Handle) Size() int { return int(h.entry.Len()) }

// Index returns the dataset sample index.
func (h *Handle) Index() int { return h.idx }

// Lookup resolves a sample name through the in-memory directory, charging
// the tree-walk CPU. It is the operation Fig 10 times.
func (fs *FS) Lookup(p *sim.Proc, name string, attrs ...string) (sample.Entry, error) {
	e, _, depth, ok := fs.dir.LookupName(name, attrs...)
	fs.stats.LookupVisits += int64(depth)
	fs.node.CPU.Use(p, sim.Duration(depth)*fs.cfg.LookupVisitCPU)
	if !ok {
		return sample.Entry{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return e, nil
}

// Open resolves a sample and returns a handle (dlfs_open).
func (fs *FS) Open(p *sim.Proc, name string, attrs ...string) (*Handle, error) {
	e, ref, depth, ok := fs.dir.LookupName(name, attrs...)
	fs.stats.LookupVisits += int64(depth)
	fs.node.CPU.Use(p, sim.Duration(depth)*fs.cfg.LookupVisitCPU)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	idx, ok := fs.keyToIdx[e.Key()]
	if !ok {
		return nil, fmt.Errorf("%w: %s (stale directory)", ErrNotFound, name)
	}
	return &Handle{fs: fs, idx: idx, entry: e, ref: ref, open: true}, nil
}

// Close invalidates the handle (dlfs_close). Metadata-only: no kernel, no
// device interaction.
func (fs *FS) Close(h *Handle) error {
	if h == nil || h.fs != fs || !h.open {
		return ErrHandle
	}
	h.open = false
	return nil
}

// Read performs the synchronous per-sample read of §III-C1 (dlfs_read, the
// DLFS-Base configuration): check the V bit; on a miss run prep → post →
// poll for this one sample, then copy from the sample cache into buf.
func (fs *FS) Read(p *sim.Proc, h *Handle, buf []byte) (int, error) {
	if h == nil || h.fs != fs || !h.open {
		return 0, ErrHandle
	}
	n := int(h.entry.Len())
	if len(buf) < n {
		n = len(buf)
	}
	u, hit := fs.readCache[h.idx]
	if hit && u.ready {
		fs.stats.CacheHits++
	} else {
		var err error
		u, err = fs.fetchSampleSync(p, h.idx)
		if err != nil {
			return 0, err
		}
	}
	fs.touchReadCache(h.idx)
	// Copy stage: a copy thread moves the bytes to the application buffer.
	wg := sim.NewWaitGroup(fs.job.Engine())
	wg.Add(1)
	pl := fs.placedByIdx[h.idx]
	pl.Len = int32(n)
	fs.copyQ.Push(copyJob{u: u, p: pl, dst: buf[:n], wg: wg})
	wg.Wait(p)
	fs.stats.SamplesRead++
	return n, nil
}

// ReadSample is Open+Read+Close by dataset index, the micro-benchmark
// loop's inner operation.
func (fs *FS) ReadSample(p *sim.Proc, idx int, buf []byte) (int, error) {
	if idx < 0 || idx >= fs.ds.Len() {
		return 0, fmt.Errorf("%w: index %d", ErrNotFound, idx)
	}
	h, err := fs.Open(p, fs.ds.Samples[idx].Name, fmt.Sprintf("class%d", fs.ds.Samples[idx].Class))
	if err != nil {
		return 0, err
	}
	defer fs.Close(h) //nolint:errcheck
	return fs.Read(p, h, buf)
}

// fetchSampleSync brings one sample into the cache as its own unit,
// synchronously: the basic DLFS I/O flow without batching.
func (fs *FS) fetchSampleSync(p *sim.Proc, idx int) (*unit, error) {
	pl := fs.placedByIdx[idx]
	u := &unit{
		node:      fs.nodeOfIdx[idx],
		offset:    pl.Offset,
		length:    pl.Len,
		samples:   []plan.Placed{pl},
		remaining: 1 << 30, // pinned in the read cache until evicted
	}
	_, ref, _, ok := fs.dir.Lookup(fs.ds.Samples[idx].Key())
	if ok {
		u.refs = []directory.EntryRef{ref}
	}
	fs.node.CPU.Acquire(p)
	if err := fs.postUnit(p, u); err != nil {
		fs.node.CPU.Release()
		return nil, err
	}
	q := fs.queues[u.node]
	for !u.ready {
		fs.handleCompletions(q)
		fs.pollWait(p)
	}
	fs.node.CPU.Release()
	if u.fetchErr != nil {
		for _, c := range u.chunks {
			fs.arena.Free(c) //nolint:errcheck
		}
		u.chunks = nil
		return nil, fmt.Errorf("%w: sample %d: %v", ErrIO, idx, u.fetchErr)
	}
	fs.readCache[idx] = u
	fs.readLRU = append(fs.readLRU, idx)
	return u, nil
}

// touchReadCache refreshes LRU order for idx.
func (fs *FS) touchReadCache(idx int) {
	for i, v := range fs.readLRU {
		if v == idx {
			fs.readLRU = append(fs.readLRU[:i], fs.readLRU[i+1:]...)
			fs.readLRU = append(fs.readLRU, idx)
			return
		}
	}
}

// evictOneRead frees the least-recently-used read-cache unit, returning
// false if there is nothing to evict.
func (fs *FS) evictOneRead() bool {
	for len(fs.readLRU) > 0 {
		idx := fs.readLRU[0]
		fs.readLRU = fs.readLRU[1:]
		u, ok := fs.readCache[idx]
		if !ok {
			continue
		}
		delete(fs.readCache, idx)
		for _, ref := range u.refs {
			fs.dir.SetV(ref, false)
		}
		for _, c := range u.chunks {
			fs.arena.Free(c) //nolint:errcheck
		}
		u.chunks = nil
		return true
	}
	return false
}

// cmdCtx links a device completion back to its unit.
type cmdCtx struct{ u *unit }

// postUnit allocates cache chunks for the unit and posts its SPDK
// commands: the prep and post stages. The caller must hold the node CPU.
// If the queue or the arena is momentarily full it polls in place until
// the unit is fully posted.
func (fs *FS) postUnit(p *sim.Proc, u *unit) error {
	cs := fs.cfg.ChunkSize
	nChunks := (int(u.length) + cs - 1) / cs
	// prep: build the request(s), resolve locations.
	p.Sleep(fs.cfg.PrepCPU * sim.Duration(nChunks))
	fs.stats.PrepTime += fs.cfg.PrepCPU * sim.Duration(nChunks)
	for {
		chunks, err := fs.arena.AllocN(nChunks)
		if err == nil {
			u.chunks = chunks
			break
		}
		// Cache full: reclaim a read-cache entry or wait for copy drains.
		if !fs.evictOneRead() {
			fs.pollAll()
			fs.pollWait(p)
		}
	}
	u.pending = nChunks
	q := fs.queues[u.node]
	for i := 0; i < nChunks; i++ {
		segOff := u.offset + int64(i*cs)
		segLen := cs
		if rem := int(u.length) - i*cs; rem < segLen {
			segLen = rem
		}
		cmd := &nvme.Command{
			Op:     nvme.OpRead,
			Offset: segOff,
			Buf:    u.chunks[i].Bytes()[:segLen],
			Ctx:    cmdCtx{u: u},
		}
		p.Sleep(fs.cfg.PostCPU)
		fs.stats.PostTime += fs.cfg.PostCPU
		for q.Submit(cmd) != nil {
			// Queue full: drain completions until a slot frees.
			fs.handleCompletions(q)
			fs.pollWait(p)
		}
		fs.stats.Commands++
		fs.stats.BytesFetched += int64(segLen)
	}
	fs.unitSeq++
	u.traceID = fs.unitSeq
	fs.cfg.Trace.Record(p.Now(), trace.KindPost, u.traceID, u.node, int(u.length))
	return nil
}

// handleCompletions drains one queue's completion ring, updating units:
// the poll stage.
func (fs *FS) handleCompletions(q nvme.Queue) int {
	done := q.Poll(0)
	fs.dispatch(done)
	return len(done)
}

// dispatch applies completions to their units. When a unit's last command
// lands, its samples' V bits are set — the data now has a copy in the
// local sample cache.
func (fs *FS) dispatch(done []nvme.Completion) {
	for _, c := range done {
		ctx, ok := c.Cmd.Ctx.(cmdCtx)
		if !ok {
			continue
		}
		u := ctx.u
		u.pending--
		if c.Err != nil && u.fetchErr == nil {
			u.fetchErr = c.Err
		}
		if u.pending == 0 {
			u.ready = true
			fs.cfg.Trace.Record(fs.job.Engine().Now(), trace.KindComplete, u.traceID, u.node, int(u.length))
			if u.fetchErr != nil {
				// A failed unit never becomes a valid cache copy.
				continue
			}
			for _, ref := range u.refs {
				fs.dir.SetV(ref, true)
			}
		}
	}
}

// pollWait accounts one busy-poll iteration and briefly yields the core so
// copy threads time-sharing the same core can progress (the OS would
// preempt a spinning SPDK poller the same way). The caller holds the node
// CPU before and after.
func (fs *FS) pollWait(p *sim.Proc) {
	fs.stats.PollIters++
	fs.stats.PollTime += fs.cfg.PollIterCPU
	p.Sleep(fs.cfg.PollIterCPU)
	fs.node.CPU.Release()
	fs.node.CPU.Acquire(p)
}

// pollAll sweeps the SPDK poll group once (the shared completion queue
// discipline: one poller balances progress across all queue pairs).
func (fs *FS) pollAll() int {
	done := fs.pollGroup.Poll(0)
	fs.dispatch(done)
	return len(done)
}
