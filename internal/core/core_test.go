package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"dlfs/internal/cluster"
	"dlfs/internal/dataset"
	"dlfs/internal/plan"
	"dlfs/internal/sim"
	"dlfs/internal/trace"
)

// mountAll mounts DLFS on every node of a fresh job and returns the
// instances once the collective completes.
func mountAll(t *testing.T, e *sim.Engine, nodes int, ds *dataset.Dataset, cfg Config) []*FS {
	t.Helper()
	job := cluster.NewJob(e, nodes, cluster.DefaultNodeSpec())
	fss := make([]*FS, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		e.Go(fmt.Sprintf("mount%d", i), func(p *sim.Proc) {
			fs, err := Mount(p, job, i, ds, cfg)
			if err != nil {
				t.Errorf("mount node %d: %v", i, err)
				return
			}
			fss[i] = fs
		})
	}
	e.RunAll()
	for i, fs := range fss {
		if fs == nil {
			t.Fatalf("node %d failed to mount", i)
		}
	}
	return fss
}

func smallDataset(n int, size int) *dataset.Dataset {
	return dataset.Generate(dataset.Config{Label: "c", Seed: 11, NumSamples: n, Dist: dataset.Fixed(size)})
}

func TestMountBuildsIdenticalReplicas(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDataset(200, 2048)
	fss := mountAll(t, e, 4, ds, Config{})
	fp := fss[0].Directory().Fingerprint()
	for i, fs := range fss {
		if fs.Directory().NumSamples() != 200 {
			t.Fatalf("node %d directory has %d samples", i, fs.Directory().NumSamples())
		}
		if fs.Directory().Fingerprint() != fp {
			t.Fatalf("node %d replica differs", i)
		}
	}
}

func TestMountRejectsBadConfig(t *testing.T) {
	e := sim.NewEngine()
	job := cluster.NewJob(e, 1, cluster.DefaultNodeSpec())
	ds := smallDataset(4, 128)
	e.Go("m", func(p *sim.Proc) {
		_, err := Mount(p, job, 0, ds, Config{CacheBytes: 1024, ChunkSize: 4096})
		if err == nil {
			t.Error("cache < chunk accepted")
		}
	})
	e.RunAll()
}

func TestMountDisklessNodeFails(t *testing.T) {
	e := sim.NewEngine()
	job := cluster.NewJob(e, 1, cluster.NodeSpec{Cores: 2, NICBandwidth: 1 << 30})
	e.Go("m", func(p *sim.Proc) {
		if _, err := Mount(p, job, 0, smallDataset(2, 64), Config{}); err == nil {
			t.Error("diskless mount accepted")
		}
	})
	e.RunAll()
}

func TestOpenReadCloseIntegrity(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDataset(64, 3000)
	fss := mountAll(t, e, 2, ds, Config{})
	e.Go("reader", func(p *sim.Proc) {
		fs := fss[0]
		for i := 0; i < ds.Len(); i++ {
			buf := make([]byte, ds.Samples[i].Size)
			n, err := fs.ReadSample(p, i, buf)
			if err != nil || n != ds.Samples[i].Size {
				t.Errorf("sample %d: n=%d err=%v", i, n, err)
				return
			}
			if dataset.ChecksumBytes(buf) != ds.Checksum(i) {
				t.Errorf("sample %d corrupt through DLFS (local+remote mix)", i)
				return
			}
		}
	})
	e.RunAll()
	if fss[0].Stats().SamplesRead != 64 {
		t.Fatalf("stats.SamplesRead = %d", fss[0].Stats().SamplesRead)
	}
}

func TestOpenErrors(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDataset(4, 128)
	fss := mountAll(t, e, 1, ds, Config{})
	e.Go("r", func(p *sim.Proc) {
		fs := fss[0]
		if _, err := fs.Open(p, "no-such-sample"); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing open: %v", err)
		}
		if _, err := fs.Lookup(p, "nope"); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing lookup: %v", err)
		}
		h, err := fs.Open(p, ds.Samples[0].Name, "class"+itoa(ds.Samples[0].Class))
		if err != nil {
			t.Error(err)
			return
		}
		if h.Size() != 128 || h.Index() != 0 {
			t.Errorf("handle size=%d idx=%d", h.Size(), h.Index())
		}
		if err := fs.Close(h); err != nil {
			t.Error(err)
		}
		if err := fs.Close(h); !errors.Is(err, ErrHandle) {
			t.Errorf("double close: %v", err)
		}
		if _, err := fs.Read(p, h, make([]byte, 10)); !errors.Is(err, ErrHandle) {
			t.Errorf("read closed: %v", err)
		}
		if _, err := fs.ReadSample(p, -1, nil); !errors.Is(err, ErrNotFound) {
			t.Errorf("negative index: %v", err)
		}
	})
	e.RunAll()
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func TestVBitCacheHit(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDataset(8, 4096)
	fss := mountAll(t, e, 1, ds, Config{})
	var cold, warm sim.Time
	e.Go("r", func(p *sim.Proc) {
		fs := fss[0]
		buf := make([]byte, 4096)
		start := p.Now()
		fs.ReadSample(p, 3, buf) //nolint:errcheck
		cold = p.Now() - start
		start = p.Now()
		fs.ReadSample(p, 3, buf) //nolint:errcheck
		warm = p.Now() - start
		// The V bit must be set while cached.
		ref, ok := fs.vRefOf(3)
		if !ok || !fs.Directory().At(ref).V() {
			t.Error("V bit not set for cached sample")
		}
	})
	e.RunAll()
	if fss[0].Stats().CacheHits != 1 {
		t.Fatalf("cache hits = %d", fss[0].Stats().CacheHits)
	}
	if warm*2 >= cold {
		t.Fatalf("warm read %v not ≪ cold %v", warm, cold)
	}
}

func TestReadCacheEviction(t *testing.T) {
	e := sim.NewEngine()
	// Cache of 2 MiB with 256K chunks = 8 chunks; 16 samples of 200K each
	// need one chunk apiece, so reading all of them forces eviction.
	ds := smallDataset(16, 200<<10)
	fss := mountAll(t, e, 1, ds, Config{CacheBytes: 2 << 20})
	e.Go("r", func(p *sim.Proc) {
		fs := fss[0]
		buf := make([]byte, 200<<10)
		for i := 0; i < 16; i++ {
			if _, err := fs.ReadSample(p, i, buf); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if dataset.ChecksumBytes(buf) != ds.Checksum(i) {
				t.Errorf("sample %d corrupt", i)
			}
		}
		// Sample 0 was evicted: its V bit must be clear.
		ref, _ := fs.vRefOf(0)
		if fs.Directory().At(ref).V() {
			t.Error("evicted sample still has V set")
		}
	})
	e.RunAll()
}

func drainEpochs(t *testing.T, e *sim.Engine, fss []*FS, seed int64) [][]Item {
	t.Helper()
	out := make([][]Item, len(fss))
	for i, fs := range fss {
		i, fs := i, fs
		e.Go(fmt.Sprintf("epoch%d", i), func(p *sim.Proc) {
			out[i] = fs.Sequence(seed).DrainAll(p)
		})
	}
	e.RunAll()
	return out
}

func verifyEpochCoverage(t *testing.T, ds *dataset.Dataset, perNode [][]Item) {
	t.Helper()
	seen := make([]int, ds.Len())
	for node, items := range perNode {
		for _, it := range items {
			seen[it.Index]++
			if len(it.Data) != ds.Samples[it.Index].Size {
				t.Fatalf("node %d sample %d: %d bytes", node, it.Index, len(it.Data))
			}
			if dataset.ChecksumBytes(it.Data) != ds.Checksum(it.Index) {
				t.Fatalf("node %d sample %d corrupt", node, it.Index)
			}
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("sample %d delivered %d times this epoch", i, n)
		}
	}
}

func TestEpochChunkModeDeliversEverySampleOnce(t *testing.T) {
	e := sim.NewEngine()
	ds := dataset.Generate(dataset.Config{Label: "ck", Seed: 21, NumSamples: 400, Dist: dataset.IMDBDist()})
	fss := mountAll(t, e, 4, ds, Config{ChunkSize: 16 << 10, CacheBytes: 8 << 20})
	perNode := drainEpochs(t, e, fss, 99)
	verifyEpochCoverage(t, ds, perNode)
	st := fss[0].Stats()
	if st.Commands == 0 || st.BytesFetched == 0 || st.CopyJobs == 0 {
		t.Fatalf("suspicious stats: %+v", st)
	}
	// Chunk batching must need far fewer commands than samples.
	totalCmds := int64(0)
	totalSamples := int64(0)
	for _, fs := range fss {
		totalCmds += fs.Stats().Commands
		totalSamples += fs.Stats().SamplesRead
	}
	if totalCmds*3 > totalSamples {
		t.Fatalf("%d commands for %d samples: chunk batching ineffective", totalCmds, totalSamples)
	}
}

func TestEpochSampleModeDeliversSequenceOrder(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDataset(200, 1024)
	fss := mountAll(t, e, 2, ds, Config{DisableChunkBatching: true})
	perNode := drainEpochs(t, e, fss, 7)
	verifyEpochCoverage(t, ds, perNode)
	// Ordered mode: each node's delivery order equals its sequence slices.
	// Rebuild the expectation from the plan.
	for node, items := range perNode {
		fs := fss[node]
		_ = fs
		var want []int
		seq := newSeqForTest(7, ds.Len(), fss[0].Config().BatchSize, 2, node)
		want = append(want, seq...)
		if len(items) != len(want) {
			t.Fatalf("node %d delivered %d, want %d", node, len(items), len(want))
		}
		for i := range want {
			if items[i].Index != want[i] {
				t.Fatalf("node %d position %d: got %d want %d", node, i, items[i].Index, want[i])
			}
		}
	}
}

// newSeqForTest mirrors the plan the FS builds internally.
func newSeqForTest(seed int64, n, batch, nodes, node int) []int {
	s := plan.NewSequence(seed, n, batch, nodes)
	var out []int
	for b := 0; b < s.NumBatches(); b++ {
		out = append(out, s.NodeBatch(node, b)...)
	}
	return out
}

func TestEpochArenaNoLeak(t *testing.T) {
	e := sim.NewEngine()
	ds := dataset.Generate(dataset.Config{Label: "lk", Seed: 31, NumSamples: 300, Dist: dataset.IMDBDist()})
	fss := mountAll(t, e, 2, ds, Config{ChunkSize: 16 << 10, CacheBytes: 4 << 20})
	perNode := drainEpochs(t, e, fss, 3)
	verifyEpochCoverage(t, ds, perNode)
	for i, fs := range fss {
		if got := fs.Arena().InUse(); got != 0 {
			t.Fatalf("node %d leaked %d cache chunks after epoch", i, got)
		}
	}
}

func TestEpochDeterministic(t *testing.T) {
	run := func() []int {
		e := sim.NewEngine()
		ds := smallDataset(120, 900)
		fss := mountAll(t, e, 2, ds, Config{ChunkSize: 8 << 10, CacheBytes: 4 << 20})
		perNode := drainEpochs(t, e, fss, 5)
		var order []int
		for _, items := range perNode {
			for _, it := range items {
				order = append(order, it.Index)
			}
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery order diverged at %d", i)
		}
	}
}

func TestTwoEpochsDifferentSeedsDifferentOrder(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDataset(150, 700)
	fss := mountAll(t, e, 1, ds, Config{ChunkSize: 8 << 10})
	var o1, o2 []int
	e.Go("r", func(p *sim.Proc) {
		for _, it := range fss[0].Sequence(1).DrainAll(p) {
			o1 = append(o1, it.Index)
		}
		for _, it := range fss[0].Sequence(2).DrainAll(p) {
			o2 = append(o2, it.Index)
		}
	})
	e.RunAll()
	if len(o1) != 150 || len(o2) != 150 {
		t.Fatalf("epoch lengths %d %d", len(o1), len(o2))
	}
	same := true
	for i := range o1 {
		if o1[i] != o2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical order")
	}
}

func TestNextBatchSizes(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDataset(100, 512)
	fss := mountAll(t, e, 4, ds, Config{BatchSize: 32, ChunkSize: 8 << 10})
	e.Go("r", func(p *sim.Proc) {
		ep := fss[0].Sequence(9)
		total := 0
		for {
			items, ok := ep.NextBatch(p)
			if !ok {
				break
			}
			if len(items) > 8 { // 32 / 4 nodes
				t.Errorf("batch of %d exceeds per-node share 8", len(items))
			}
			total += len(items)
		}
		if total != ep.Len() || ep.Remaining() != 0 {
			t.Errorf("delivered %d of %d", total, ep.Len())
		}
	})
	e.RunAll()
}

func TestUnmountIdempotent(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDataset(10, 256)
	fss := mountAll(t, e, 1, ds, Config{})
	fss[0].Unmount()
	fss[0].Unmount() // second call must not panic
	e.RunAll()
	if dl := e.Deadlocked(); dl != nil {
		t.Fatalf("copy pool stuck after unmount: %v", dl)
	}
}

func TestEdgeSamplesHandled(t *testing.T) {
	// Samples deliberately larger than half a chunk so many straddle.
	e := sim.NewEngine()
	ds := smallDataset(60, 5000)
	fss := mountAll(t, e, 2, ds, Config{ChunkSize: 8192, CacheBytes: 4 << 20})
	perNode := drainEpochs(t, e, fss, 13)
	verifyEpochCoverage(t, ds, perNode)
	edges := int64(0)
	for _, fs := range fss {
		edges += fs.Stats().EdgeSamples
	}
	if edges == 0 {
		t.Fatal("expected edge samples with 5000B samples in 8192B chunks")
	}
}

func TestSampleLargerThanChunk(t *testing.T) {
	// A sample bigger than the chunk size must be disassembled into
	// multiple SPDK requests (§III-C1).
	e := sim.NewEngine()
	ds := smallDataset(10, 150<<10)
	fss := mountAll(t, e, 1, ds, Config{DisableChunkBatching: true, ChunkSize: 64 << 10})
	e.Go("r", func(p *sim.Proc) {
		buf := make([]byte, 150<<10)
		if _, err := fss[0].ReadSample(p, 0, buf); err != nil {
			t.Error(err)
			return
		}
		if dataset.ChecksumBytes(buf) != ds.Checksum(0) {
			t.Error("multi-chunk sample corrupt")
		}
	})
	e.RunAll()
	if fss[0].Stats().Commands < 3 {
		t.Fatalf("150K sample in 64K chunks used %d commands, want 3", fss[0].Stats().Commands)
	}
}

func TestSingleCoreNoStarvation(t *testing.T) {
	// With a single core the poller and copy threads time-share; the epoch
	// must still complete.
	e := sim.NewEngine()
	ds := smallDataset(80, 2048)
	job := cluster.NewJob(e, 1, cluster.NodeSpec{Cores: 1, NICBandwidth: 1 << 30, Device: cluster.DefaultNodeSpec().Device})
	var fs *FS
	e.Go("m", func(p *sim.Proc) {
		var err error
		fs, err = Mount(p, job, 0, ds, Config{ChunkSize: 8 << 10, CacheBytes: 2 << 20, CopyThreads: 2})
		if err != nil {
			t.Error(err)
			return
		}
		items := fs.Sequence(1).DrainAll(p)
		if len(items) != 80 {
			t.Errorf("delivered %d of 80", len(items))
		}
		fs.Unmount() // let the idle copy threads exit
	})
	e.RunAll()
	if dl := e.Deadlocked(); dl != nil {
		t.Fatalf("deadlock on single core: %v", dl)
	}
}

func TestTraceRecordsPipeline(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDataset(60, 2048)
	rec := trace.New(0)
	fss := mountAll(t, e, 1, ds, Config{ChunkSize: 8 << 10, CacheBytes: 2 << 20, Trace: rec})
	perNode := drainEpochs(t, e, fss, 2)
	verifyEpochCoverage(t, ds, perNode)
	sum := rec.Summarize()
	if sum.Counts[trace.KindEmit] != 60 {
		t.Fatalf("emits = %d, want 60", sum.Counts[trace.KindEmit])
	}
	if sum.Counts[trace.KindPost] == 0 || sum.Counts[trace.KindPost] != sum.Counts[trace.KindComplete] {
		t.Fatalf("posts %d vs completes %d", sum.Counts[trace.KindPost], sum.Counts[trace.KindComplete])
	}
	if sum.Counts[trace.KindFree] != sum.Counts[trace.KindPost] {
		t.Fatalf("frees %d vs posts %d: units leaked or double-freed", sum.Counts[trace.KindFree], sum.Counts[trace.KindPost])
	}
	if sum.FetchP50 <= 0 {
		t.Fatal("no fetch latency recorded")
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeJSON(&buf); err != nil || buf.Len() == 0 {
		t.Fatalf("chrome json: %v", err)
	}
}
