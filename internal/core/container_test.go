package core

import (
	"fmt"
	"testing"

	"dlfs/internal/cluster"
	"dlfs/internal/dataset"
	"dlfs/internal/sample"
	"dlfs/internal/sim"
)

func mountAllContainers(t *testing.T, e *sim.Engine, nodes int, ds *dataset.Dataset, per int, cfg Config) []*FS {
	t.Helper()
	job := cluster.NewJob(e, nodes, cluster.DefaultNodeSpec())
	fss := make([]*FS, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		e.Go(fmt.Sprintf("mount%d", i), func(p *sim.Proc) {
			fs, err := MountContainers(p, job, i, ds, per, cfg)
			if err != nil {
				t.Errorf("mount node %d: %v", i, err)
				return
			}
			fss[i] = fs
		})
	}
	e.RunAll()
	for i, fs := range fss {
		if fs == nil {
			t.Fatalf("node %d failed to mount", i)
		}
	}
	return fss
}

func TestContainerMountSampleAccess(t *testing.T) {
	e := sim.NewEngine()
	ds := dataset.Generate(dataset.Config{Label: "cm", Seed: 41, NumSamples: 120, Dist: dataset.IMDBDist()})
	fss := mountAllContainers(t, e, 3, ds, 20, Config{ChunkSize: 8 << 10, CacheBytes: 4 << 20})
	// Directory holds samples + one entry per container.
	if fss[0].Directory().NumSamples() <= ds.Len() {
		t.Fatalf("directory has %d entries, want > %d (container entries missing)", fss[0].Directory().NumSamples(), ds.Len())
	}
	e.Go("r", func(p *sim.Proc) {
		// Direct access to individual samples inside batched files.
		for i := 0; i < ds.Len(); i += 7 {
			buf := make([]byte, ds.Samples[i].Size)
			if _, err := fss[0].ReadSample(p, i, buf); err != nil {
				t.Errorf("sample %d: %v", i, err)
				return
			}
			if dataset.ChecksumBytes(buf) != ds.Checksum(i) {
				t.Errorf("sample %d corrupt inside container", i)
			}
		}
	})
	e.RunAll()
}

func TestContainerMountEpochCoverage(t *testing.T) {
	e := sim.NewEngine()
	ds := dataset.Generate(dataset.Config{Label: "ce", Seed: 43, NumSamples: 200, Dist: dataset.Fixed(1500)})
	fss := mountAllContainers(t, e, 2, ds, 25, Config{ChunkSize: 16 << 10, CacheBytes: 4 << 20})
	perNode := drainEpochs(t, e, fss, 5)
	verifyEpochCoverage(t, ds, perNode)
	// Chunk batching still collapses commands even through containers.
	cmds := fss[0].Stats().Commands + fss[1].Stats().Commands
	if cmds*2 > int64(ds.Len()) {
		t.Fatalf("%d commands for %d container-packed samples", cmds, ds.Len())
	}
}

func TestContainerFileOrientedAccess(t *testing.T) {
	e := sim.NewEngine()
	ds := dataset.Generate(dataset.Config{Label: "cf", Seed: 47, NumSamples: 60, Dist: dataset.Fixed(900)})
	fss := mountAllContainers(t, e, 2, ds, 10, Config{ChunkSize: 8 << 10, CacheBytes: 4 << 20})
	e.Go("r", func(p *sim.Proc) {
		// Read back a whole container from a *remote* node (node 1's first
		// part, read by node 0's instance) and re-scan its records.
		name := fmt.Sprintf("%s/node1/part-%05d.rec", ds.Label, 0)
		entry, _, _, ok := fss[0].Directory().LookupAny(sample.KeyOf(name))
		if !ok {
			t.Errorf("container entry %q missing from directory", name)
			return
		}
		if entry.NID() != 1 {
			t.Errorf("container entry on node %d, want 1", entry.NID())
		}
		buf := make([]byte, entry.Len())
		n, err := fss[0].ReadWholeFile(p, name, buf)
		if err != nil || n != int(entry.Len()) {
			t.Errorf("ReadWholeFile: n=%d err=%v", n, err)
			return
		}
		recs, err := dataset.Scan(buf)
		if err != nil {
			t.Errorf("container failed re-scan after round trip: %v", err)
			return
		}
		if len(recs) == 0 || len(recs) > 10 {
			t.Errorf("scanned %d records", len(recs))
		}
		// Error paths.
		if _, err := fss[0].ReadWholeFile(p, "no/such/file", buf); err == nil {
			t.Error("missing file accepted")
		}
		if _, err := fss[0].ReadWholeFile(p, name, buf[:4]); err == nil {
			t.Error("short buffer accepted")
		}
	})
	e.RunAll()
}

func TestContainerTooLargeRejected(t *testing.T) {
	e := sim.NewEngine()
	// 2000 samples × 8 KiB ≈ 16 MiB per container > the 8 MiB entry cap.
	ds := dataset.Generate(dataset.Config{Label: "cl", Seed: 53, NumSamples: 2000, Dist: dataset.Fixed(8 << 10)})
	job := cluster.NewJob(e, 1, cluster.DefaultNodeSpec())
	e.Go("m", func(p *sim.Proc) {
		if _, err := MountContainers(p, job, 0, ds, 2000, Config{}); err == nil {
			t.Error("oversized container accepted")
		}
	})
	e.RunAll()
}
