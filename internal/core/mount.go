package core

import (
	"fmt"

	"dlfs/internal/cluster"
	"dlfs/internal/dataset"
	"dlfs/internal/directory"
	"dlfs/internal/nvme"
	"dlfs/internal/plan"
	"dlfs/internal/sample"
	"dlfs/internal/sim"
	"dlfs/internal/spdk"
)

// Mount is the collective dlfs_mount (§III-A, §III-B2): every node of the
// job calls it from its own process with the same dataset and config.
//
// Node nid uploads the samples whose keys home to nid onto its local NVMe
// device (back to back, the layout plan.SequentialLayout describes),
// builds its AVL partition, and exchanges partitions with an allgather so
// each node returns holding an identical full directory plus open I/O
// queue pairs to every storage node's device — local via PCIe, remote via
// the NVMe-oF target.
//
// The upload itself is staged before training starts and is not part of
// any measured window, so it moves bytes without consuming virtual time;
// the directory exchange does cost fabric time.
func Mount(p *sim.Proc, job *cluster.Job, nodeID int, ds *dataset.Dataset, cfg Config) (*FS, error) {
	cfg = cfg.withDefaults()
	node := job.Node(nodeID)
	if int64(cfg.ChunkSize) > cfg.CacheBytes {
		return nil, fmt.Errorf("dlfs: cache (%d) smaller than one chunk (%d)", cfg.CacheBytes, cfg.ChunkSize)
	}

	n := job.N()
	storage := cfg.StorageNodes
	if storage == nil {
		storage = make([]int, n)
		for i := range storage {
			storage[i] = i
		}
	}
	isStorage := false
	for _, s := range storage {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("dlfs: storage node %d outside job of %d nodes", s, n)
		}
		if job.Node(s).Device == nil {
			return nil, fmt.Errorf("dlfs: storage node %d has no NVMe device", s)
		}
		if s == nodeID {
			isStorage = true
		}
	}
	// Resolve every sample's home node and key once; all nodes derive the
	// identical mapping from the shared manifest.
	keys := make([]uint64, ds.Len())
	homes := make([]uint16, ds.Len())
	keyToIdx := make(map[uint64]int, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		k := ds.Samples[i].Key()
		if prev, dup := keyToIdx[k]; dup {
			return nil, fmt.Errorf("dlfs: samples %d and %d collide on key %#x; rename one", prev, i, k)
		}
		keyToIdx[k] = i
		keys[i] = k
		homes[i] = uint16(storage[directory.HomeNode(k, len(storage))])
	}

	// Upload this node's shard sequentially and build the partition.
	// Diskless clients contribute an empty partition to the allgather.
	part := directory.NewPartition(uint16(nodeID))
	var off int64
	for i := 0; isStorage && i < ds.Len(); i++ {
		if homes[i] != uint16(nodeID) {
			continue
		}
		content := ds.Content(i)
		if cfg.StageIn != nil {
			// Stage the file in from the backend PFS: one open + stream.
			cfg.StageIn.ReadFile(p, int64(len(content)))
		}
		if _, err := node.Device.Store().WriteAt(content, off); err != nil {
			return nil, fmt.Errorf("dlfs: uploading sample %d: %w", i, err)
		}
		e, err := sample.NewEntry(uint16(nodeID), keys[i], off, int32(len(content)))
		if err != nil {
			return nil, fmt.Errorf("dlfs: sample %d: %w", i, err)
		}
		if err := part.Add(e); err != nil {
			return nil, err
		}
		off += int64(len(content))
	}

	// Creating entries from the raw dataset (stat, hash, tree insert) is
	// the expensive part §III-B2 parallelises: each node only indexes its
	// own shard.
	node.Compute(p, sim.Duration(part.Len())*cfg.EntryBuildCPU)

	// Collective exchange of partitions; every node reconstructs the full
	// directory from the gathered blobs. Rebuilding a pre-serialized
	// entry is much cheaper than creating it (no stat, no hashing).
	blobs := job.Allgather(p, "dlfs-mount-dir", nodeID, part.Serialize())
	remoteEntries := 0
	for i, b := range blobs {
		if i != nodeID {
			remoteEntries += len(b) / 16
		}
	}
	node.Compute(p, sim.Duration(remoteEntries)*cfg.EntryInsertCPU)
	dir, err := directory.FromBlobs(blobs)
	if err != nil {
		return nil, err
	}
	if dir.NumSamples() != ds.Len() {
		return nil, fmt.Errorf("dlfs: directory holds %d samples, dataset has %d", dir.NumSamples(), ds.Len())
	}

	// Derive the global physical layout from the directory (identical on
	// all nodes).
	placed := make([]plan.Placed, ds.Len())
	nodeOf := make([]uint16, ds.Len())
	for nid := 0; nid < n; nid++ {
		dir.Partition(uint16(nid)).Ascend(func(e sample.Entry) bool {
			idx, ok := keyToIdx[e.Key()]
			if !ok {
				err = fmt.Errorf("dlfs: directory key %#x not in manifest", e.Key())
				return false
			}
			placed[idx] = plan.Placed{Sample: idx, Offset: e.Offset(), Len: e.Len()}
			nodeOf[idx] = e.NID()
			return true
		})
		if err != nil {
			return nil, err
		}
	}

	// Initialise the SPDK environment: the huge-page pool backing the
	// sample cache, plus controller attachment for every storage device —
	// local over PCIe, remote through the NVMe-oF target. One I/O queue
	// pair per device is the per-device RPQ binding of Fig 4(b);
	// non-storage slots stay nil and are never addressed.
	env, err := spdk.NewEnv(job.Engine(), cfg.CacheBytes, cfg.ChunkSize)
	if err != nil {
		return nil, err
	}
	queues := make([]nvme.Queue, n)
	group := spdk.NewPollGroup()
	for _, nid := range storage {
		var ctrl spdk.Controller
		if nid == nodeID {
			ctrl, err = env.AttachLocal(fmt.Sprintf("node%d", nid), node.Device)
		} else {
			tgt := job.Node(nid).Target
			if tgt == nil {
				return nil, fmt.Errorf("dlfs: node %d exports no NVMe-oF target", nid)
			}
			ctrl, err = env.AttachRemote(fmt.Sprintf("node%d", nid), tgt, nodeID)
		}
		if err != nil {
			return nil, err
		}
		queues[nid] = ctrl.AllocQPair(cfg.QueueDepth)
		group.Add(queues[nid])
	}
	arena := env.Arena()

	fs := &FS{
		cfg:         cfg,
		node:        node,
		job:         job,
		ds:          ds,
		dir:         dir,
		env:         env,
		arena:       arena,
		queues:      queues,
		pollGroup:   group,
		keyToIdx:    keyToIdx,
		placedByIdx: placed,
		nodeOfIdx:   nodeOf,
		copyQ:       sim.NewQueue[copyJob](job.Engine()),
		readCache:   make(map[int]*unit),
	}
	fs.startCopyPool()

	// All nodes leave mount together, with verified-identical replicas.
	job.Barrier(p, "dlfs-mount-done")
	return fs, nil
}
