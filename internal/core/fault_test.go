package core

import (
	"errors"
	"testing"

	"dlfs/internal/nvme"
	"dlfs/internal/sim"
)

var errMedia = errors.New("simulated media error")

// failNthRead fails the n-th read command on the device and succeeds
// afterwards.
func failNthRead(dev *nvme.Device, n int) {
	count := 0
	dev.InjectFault(func(c *nvme.Command) error {
		if c.Op != nvme.OpRead {
			return nil
		}
		count++
		if count == n {
			return errMedia
		}
		return nil
	})
}

func TestReadSurfacesDeviceError(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDataset(8, 4096)
	fss := mountAll(t, e, 1, ds, Config{})
	failNthRead(fss[0].Node().Device, 1)
	e.Go("r", func(p *sim.Proc) {
		buf := make([]byte, 4096)
		if _, err := fss[0].ReadSample(p, 2, buf); !errors.Is(err, ErrIO) {
			t.Errorf("ReadSample under fault: %v, want ErrIO", err)
		}
		// The failed sample must not have been cached as valid.
		ref, _ := fss[0].vRefOf(2)
		if fss[0].Directory().At(ref).V() {
			t.Error("failed fetch set the V bit")
		}
		// The cache chunks were reclaimed.
		if fss[0].Arena().InUse() != 0 {
			t.Errorf("failed read leaked %d chunks", fss[0].Arena().InUse())
		}
		// Clearing the fault, the same sample reads fine.
		fss[0].Node().Device.InjectFault(nil)
		if _, err := fss[0].ReadSample(p, 2, buf); err != nil {
			t.Errorf("read after fault cleared: %v", err)
		}
	})
	e.RunAll()
}

func TestEpochSurfacesDeviceError(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDataset(200, 2048)
	fss := mountAll(t, e, 1, ds, Config{ChunkSize: 8 << 10, CacheBytes: 2 << 20})
	// Fail the 5th chunk fetch: the epoch starts fine, then dies.
	failNthRead(fss[0].Node().Device, 5)
	e.Go("r", func(p *sim.Proc) {
		ep := fss[0].Sequence(3)
		delivered := 0
		for {
			items, ok := ep.NextBatch(p)
			delivered += len(items)
			if !ok {
				break
			}
		}
		if ep.Err() == nil {
			t.Errorf("epoch completed %d/%d samples without surfacing the fault", delivered, ep.Len())
		} else if !errors.Is(ep.Err(), ErrIO) {
			t.Errorf("epoch error = %v, want ErrIO", ep.Err())
		}
		if delivered >= ep.Len() {
			t.Error("epoch claims full delivery despite device error")
		}
		// Subsequent NextBatch stays terminated.
		if _, ok := ep.NextBatch(p); ok {
			t.Error("NextBatch continued after failure")
		}
	})
	e.RunAll()
}

func TestEpochSucceedsWithoutErrWhenHealthy(t *testing.T) {
	e := sim.NewEngine()
	ds := smallDataset(100, 1024)
	fss := mountAll(t, e, 2, ds, Config{ChunkSize: 8 << 10})
	e.Go("r", func(p *sim.Proc) {
		ep := fss[0].Sequence(4)
		ep.DrainAll(p)
		if ep.Err() != nil {
			t.Errorf("healthy epoch reported %v", ep.Err())
		}
	})
	e.RunAll()
}

func TestRemoteFaultPropagatesThroughFabric(t *testing.T) {
	// The fault occurs on a *remote* node's device; the NVMe-oF completion
	// carries it back across the fabric to the reading client.
	e := sim.NewEngine()
	ds := smallDataset(40, 2048)
	fss := mountAll(t, e, 2, ds, Config{})
	// Find a sample stored on node 1 and fail node 1's device.
	remoteIdx := -1
	for i := 0; i < ds.Len(); i++ {
		e2, _, _, ok := fss[0].Directory().LookupName(ds.Samples[i].Name, "class"+itoa(ds.Samples[i].Class))
		if ok && e2.NID() == 1 {
			remoteIdx = i
			break
		}
	}
	if remoteIdx < 0 {
		t.Skip("no sample landed on node 1")
	}
	fss[0].Node().Job().Node(1).Device.InjectFault(func(c *nvme.Command) error {
		if c.Op == nvme.OpRead {
			return errMedia
		}
		return nil
	})
	e.Go("r", func(p *sim.Proc) {
		buf := make([]byte, 2048)
		if _, err := fss[0].ReadSample(p, remoteIdx, buf); !errors.Is(err, ErrIO) {
			t.Errorf("remote fault: %v, want ErrIO", err)
		}
	})
	e.RunAll()
}
