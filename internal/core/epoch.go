package core

import (
	"fmt"
	"math/rand"
	"sort"

	"dlfs/internal/directory"
	"dlfs/internal/plan"
	"dlfs/internal/sim"
	"dlfs/internal/trace"
)

// Item is one delivered sample: its dataset index and its bytes in an
// application buffer.
type Item struct {
	Index int
	Data  []byte
}

// Epoch is one pass over this node's share of the dataset, created by
// Sequence (dlfs_sequence) and consumed by NextBatch (dlfs_bread).
type Epoch struct {
	fs    *FS
	seed  int64
	rng   *rand.Rand
	units []*unit // posting order; for ordered mode also emission order

	// lookupDepth per unit, charged at prep time.
	lookupDepth []int

	ordered  bool // sample-level mode: deliver the global-sequence order
	posted   int
	resident []*unit // opportunistic mode: ready units with samples left
	pending  []*unit // posted, awaiting readiness
	emitIdx  []int   // per-unit next sample to emit (parallel to units)

	perBatch int
	total    int
	emitted  int
	nextUnit int // ordered mode: unit being drained
	failed   error
}

// Sequence starts an epoch with the given seed (dlfs_sequence): every node
// calling it with the same seed derives the identical global plan and
// reads only its own share. Chunk batching follows Config.DisableChunkBatching.
func (fs *FS) Sequence(seed int64) *Epoch {
	ep := &Epoch{
		fs:   fs,
		seed: seed,
		rng:  rand.New(rand.NewSource(seed ^ int64(fs.node.ID)<<32)),
	}
	readers := fs.cfg.ReaderNodes
	if readers == nil {
		readers = make([]int, fs.job.N())
		for i := range readers {
			readers[i] = i
		}
	}
	pos := -1
	for i, r := range readers {
		if r == fs.node.ID {
			pos = i
		}
	}
	ep.perBatch = fs.cfg.BatchSize / len(readers)
	if ep.perBatch < 1 {
		ep.perBatch = 1
	}
	if pos >= 0 {
		if fs.cfg.DisableChunkBatching {
			ep.buildSampleUnits(seed, pos, len(readers))
		} else {
			ep.buildChunkUnits(seed, pos, len(readers))
		}
	}
	ep.emitIdx = make([]int, len(ep.units))
	for _, u := range ep.units {
		ep.total += len(u.samples)
	}
	return ep
}

// buildChunkUnits cuts the global layout into data chunks and edge samples
// (§III-D2) and takes this node's round-robin share of the access lists.
func (ep *Epoch) buildChunkUnits(seed int64, pos, readers int) {
	fs := ep.fs
	n := fs.job.N()
	layout := &plan.Layout{NodeSamples: make([][]plan.Placed, n), ChunkSize: int64(fs.cfg.ChunkSize)}
	for idx, pl := range fs.placedByIdx {
		nid := fs.nodeOfIdx[idx]
		layout.NodeSamples[nid] = append(layout.NodeSamples[nid], pl)
	}
	for nid := range layout.NodeSamples {
		s := layout.NodeSamples[nid]
		sort.Slice(s, func(i, j int) bool { return s[i].Offset < s[j].Offset })
	}
	cp, err := plan.BuildChunkPlan(layout)
	if err != nil {
		// The layout came from our own mount; a failure here is a bug.
		panic("dlfs: " + err.Error())
	}
	for i, c := range cp.Chunks {
		if i%readers != pos {
			continue
		}
		ep.units = append(ep.units, &unit{
			node:      c.Node,
			offset:    c.Offset,
			length:    c.Length,
			samples:   c.Samples,
			remaining: len(c.Samples),
		})
		fs.stats.ChunksFetched++
	}
	for i, e := range cp.Edges {
		if i%readers != pos {
			continue
		}
		ep.units = append(ep.units, &unit{
			node:      e.Node,
			offset:    e.Placed.Offset,
			length:    e.Placed.Len,
			samples:   []plan.Placed{e.Placed},
			remaining: 1,
		})
		fs.stats.EdgeSamples++
	}
	// Randomise the posting order with the shared seed so devices are hit
	// uniformly; the emission itself re-randomises over resident chunks.
	shuf := rand.New(rand.NewSource(seed ^ 0x5DEECE66D ^ int64(fs.node.ID)))
	shuf.Shuffle(len(ep.units), func(i, j int) { ep.units[i], ep.units[j] = ep.units[j], ep.units[i] })
	ep.finishUnits()
}

// buildSampleUnits prepares sample-level batching (§III-D1): the seeded
// global sequence, this node's slice of every mini-batch, one fetch unit
// per sample, delivered in exactly that order.
func (ep *Epoch) buildSampleUnits(seed int64, pos, readers int) {
	fs := ep.fs
	seq := plan.NewSequence(seed, fs.ds.Len(), fs.cfg.BatchSize, readers)
	ep.ordered = true
	for b := 0; b < seq.NumBatches(); b++ {
		for _, idx := range seq.NodeBatch(pos, b) {
			pl := fs.placedByIdx[idx]
			ep.units = append(ep.units, &unit{
				node:      fs.nodeOfIdx[idx],
				offset:    pl.Offset,
				length:    pl.Len,
				samples:   []plan.Placed{pl},
				remaining: 1,
			})
		}
	}
	ep.finishUnits()
}

// finishUnits resolves directory refs and lookup depths for every unit.
func (ep *Epoch) finishUnits() {
	fs := ep.fs
	ep.lookupDepth = make([]int, len(ep.units))
	for i, u := range ep.units {
		u.epIdx = i
		total := 0
		for _, pl := range u.samples {
			key := fs.ds.Samples[pl.Sample].Key()
			_, ref, depth, ok := fs.dir.Lookup(key)
			total += depth
			if ok {
				u.refs = append(u.refs, ref)
			}
		}
		ep.lookupDepth[i] = total
		fs.stats.LookupVisits += int64(total)
	}
}

// Err reports the device error that ended the epoch early, if any. Check
// it when NextBatch returns ok == false before the epoch is exhausted.
func (ep *Epoch) Err() error { return ep.failed }

// Remaining reports samples not yet delivered this epoch.
func (ep *Epoch) Remaining() int { return ep.total - ep.emitted }

// Len reports this node's share of the epoch.
func (ep *Epoch) Len() int { return ep.total }

// pump posts units in order while queue depth and cache chunks allow. The
// caller holds the node CPU.
func (ep *Epoch) pump(p *sim.Proc) {
	fs := ep.fs
	cs := fs.cfg.ChunkSize
	for ep.posted < len(ep.units) {
		u := ep.units[ep.posted]
		nChunks := (int(u.length) + cs - 1) / cs
		q := fs.queues[u.node]
		if q.Inflight()+nChunks > q.Depth() {
			return
		}
		if fs.arena.FreeChunks() < nChunks && !fs.evictOneRead() {
			return
		}
		// Charge the directory walk that located this unit's samples.
		p.Sleep(sim.Duration(ep.lookupDepth[ep.posted]) * fs.cfg.LookupVisitCPU)
		fs.stats.PrepTime += sim.Duration(ep.lookupDepth[ep.posted]) * fs.cfg.LookupVisitCPU
		if err := fs.postUnit(p, u); err != nil {
			panic("dlfs: post failed: " + err.Error())
		}
		ep.pending = append(ep.pending, u)
		ep.posted++
	}
}

// harvest moves newly ready pending units into the resident set.
func (ep *Epoch) harvest() {
	keep := ep.pending[:0]
	for _, u := range ep.pending {
		if u.ready {
			ep.resident = append(ep.resident, u)
		} else {
			keep = append(keep, u)
		}
	}
	ep.pending = keep
}

// NextBatch delivers this node's next mini-batch portion (dlfs_bread): it
// keeps the queue pairs full, busy-polls completions on the caller's core
// — optionally overlapping Config.OverlapCompute of application work in
// the polling window — and hands ready samples to the copy threads. It
// returns false when the epoch is exhausted.
func (ep *Epoch) NextBatch(p *sim.Proc) ([]Item, bool) {
	fs := ep.fs
	if ep.failed != nil || ep.emitted >= ep.total {
		return nil, false
	}
	k := ep.perBatch
	if rem := ep.total - ep.emitted; rem < k {
		k = rem
	}
	items := make([]Item, 0, k)
	wg := sim.NewWaitGroup(fs.job.Engine())

	fs.node.CPU.Acquire(p)
	ep.pump(p)
	if fs.cfg.OverlapCompute > 0 {
		// The Fig 7b experiment: computation placed inside the polling
		// loop, on the polling core, while the posted I/O proceeds.
		p.Sleep(fs.cfg.OverlapCompute)
	}
	for len(items) < k {
		u, ui := ep.takeReadyUnit(p)
		if u.fetchErr != nil {
			// A device error poisons the epoch: release the core, free the
			// failed unit, and surface through Err().
			ep.failed = fmt.Errorf("%w: %v", ErrIO, u.fetchErr)
			for _, c := range u.chunks {
				fs.arena.Free(c) //nolint:errcheck
			}
			u.chunks = nil
			fs.node.CPU.Release()
			wg.Wait(p)
			return items, len(items) > 0
		}
		pl := u.samples[ep.emitIdx[ui]]
		ep.emitIdx[ui]++
		fs.cfg.Trace.Record(p.Now(), trace.KindEmit, u.traceID, u.node, int(pl.Len))
		buf := make([]byte, pl.Len)
		items = append(items, Item{Index: pl.Sample, Data: buf})
		wg.Add(1)
		fs.copyQ.Push(copyJob{u: u, p: pl, dst: buf, wg: wg})
	}
	fs.node.CPU.Release()
	wg.Wait(p)
	ep.emitted += k
	fs.stats.SamplesRead += int64(k)
	return items, true
}

// takeReadyUnit returns a unit with an unemitted sample, polling until one
// is available. In ordered mode it is the next unit of the sequence; in
// opportunistic mode a uniformly random resident chunk, per §III-D2.
// Returns the unit and its index in ep.units (for emitIdx bookkeeping).
func (ep *Epoch) takeReadyUnit(p *sim.Proc) (*unit, int) {
	fs := ep.fs
	if ep.ordered {
		// Advance past fully emitted units.
		for ep.emitIdx[ep.nextUnit] >= len(ep.units[ep.nextUnit].samples) {
			ep.nextUnit++
		}
		u := ep.units[ep.nextUnit]
		for !u.ready {
			ep.pump(p)
			fs.pollAll()
			fs.pollWait(p)
		}
		return u, ep.nextUnit
	}
	for {
		// Drop exhausted units from the resident set.
		live := ep.resident[:0]
		for _, u := range ep.resident {
			if ep.emitIdxOf(u) < len(u.samples) {
				live = append(live, u)
			}
		}
		ep.resident = live
		if len(ep.resident) > 0 {
			u := ep.resident[ep.rng.Intn(len(ep.resident))]
			return u, u.epIdx
		}
		ep.pump(p)
		fs.pollAll()
		ep.harvest()
		fs.pollWait(p)
	}
}

func (ep *Epoch) emitIdxOf(u *unit) int { return ep.emitIdx[u.epIdx] }

// DrainAll runs the whole epoch, returning every delivered item in order
// of delivery. Convenience for tests and examples.
func (ep *Epoch) DrainAll(p *sim.Proc) []Item {
	var all []Item
	for {
		items, ok := ep.NextBatch(p)
		if !ok {
			return all
		}
		all = append(all, items...)
	}
}

// vRefOf exposes a sample's directory ref for tests.
func (fs *FS) vRefOf(idx int) (directory.EntryRef, bool) {
	_, ref, _, ok := fs.dir.Lookup(fs.ds.Samples[idx].Key())
	return ref, ok
}
