// Package core implements DLFS — the Deep Learning File System of the
// paper (§III): a user-level, read-optimized, ephemeral file system that
// disaggregates NVMe devices to parallel training tasks through the SPDK
// facade.
//
// The pieces map one-to-one onto the paper's design:
//
//   - dlfs_mount   → Mount: collective; uploads each node's shard to its
//     device, builds the local AVL partition, allgathers the partitions
//     into an identical in-memory sample directory on every node (§III-B).
//   - dlfs_open / dlfs_read / dlfs_close → Open/Read/Close: POSIX-like
//     per-sample access with the V-bit sample cache (§III-C1); this is the
//     DLFS-Base configuration of the evaluation.
//   - dlfs_sequence / dlfs_bread → Sequence/NextBatch: the opportunistic
//     batching optimisations (§III-D) — a seeded global sample order with
//     per-node slices, and backend chunk-level batching with a chunk
//     access list and edge-sample access list.
//
// The read pipeline follows Fig 4: requests are prepared (prep), posted to
// per-device I/O queue pairs fed by request posting queues (post), their
// completions are drained from a shared completion queue by polling
// (poll), and a pool of copy threads moves bytes from the huge-page sample
// cache into application buffers (copy).
package core

import (
	"errors"
	"fmt"

	"dlfs/internal/cluster"
	"dlfs/internal/dataset"
	"dlfs/internal/directory"
	"dlfs/internal/hugepage"
	"dlfs/internal/nvme"
	"dlfs/internal/pfs"
	"dlfs/internal/plan"
	"dlfs/internal/sim"
	"dlfs/internal/spdk"
	"dlfs/internal/trace"
)

// Config tunes a DLFS instance. The zero value is replaced by defaults.
type Config struct {
	// ChunkSize is the sample-cache chunk size (paper default 256 KB).
	ChunkSize int
	// QueueDepth bounds outstanding SPDK commands per I/O queue pair.
	QueueDepth int
	// CopyThreads is the size of the copy-thread pool.
	CopyThreads int
	// CacheBytes sizes the huge-page sample cache.
	CacheBytes int64
	// BatchSize is the mini-batch size (paper default 32).
	BatchSize int
	// DisableChunkBatching turns off backend chunk-level batching
	// (§III-D2), making every sample its own request (sample-level
	// batching only). The zero value — batching on — is the paper's
	// default DLFS configuration.
	DisableChunkBatching bool

	// CPU cost model of the user-level stack.
	PrepCPU        sim.Duration // per request prepared
	PostCPU        sim.Duration // per request posted
	PollIterCPU    sim.Duration // per polling-loop iteration
	LookupVisitCPU sim.Duration // per AVL node visited during lookup
	EntryBuildCPU  sim.Duration // per entry created from the raw dataset at mount (stat + hash + insert)
	EntryInsertCPU sim.Duration // per entry rebuilt from a serialized partition blob
	CopyBandwidth  int64        // memcpy stream bandwidth per copy thread

	// OverlapCompute injects this much application computation into each
	// batch's polling window (the Fig 7b experiment). Zero disables it.
	OverlapCompute sim.Duration

	// StorageNodes lists the job nodes whose NVMe devices hold the
	// dataset. Nil means every node stores a shard (the common case); a
	// subset lets diskless clients mount a pool of disaggregated devices,
	// the Fig 11 topology.
	StorageNodes []int

	// ReaderNodes lists the job nodes that consume epochs; the global
	// sequence is split across exactly these. Nil means every node reads.
	ReaderNodes []int

	// StageIn, when set, charges mount-time upload against this backend
	// persistent file system: one open + stream per file staged. Nil
	// keeps mount outside the measured window (the default, matching the
	// paper's evaluation, which measures training reads only).
	StageIn *pfs.System

	// Trace, when set, records per-unit pipeline timelines (post,
	// complete, emit, free) for diagnosis; see internal/trace.
	Trace *trace.Recorder
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{
		ChunkSize:      256 << 10,
		QueueDepth:     128,
		CopyThreads:    4,
		CacheBytes:     256 << 20,
		BatchSize:      32,
		PrepCPU:        250,
		PostCPU:        150,
		PollIterCPU:    120,
		LookupVisitCPU: 15,
		EntryBuildCPU:  1000,
		EntryInsertCPU: 100,
		CopyBandwidth:  12_000_000_000,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ChunkSize <= 0 {
		c.ChunkSize = d.ChunkSize
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.CopyThreads <= 0 {
		c.CopyThreads = d.CopyThreads
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = d.CacheBytes
	}
	if c.BatchSize <= 0 {
		c.BatchSize = d.BatchSize
	}
	if c.PrepCPU <= 0 {
		c.PrepCPU = d.PrepCPU
	}
	if c.PostCPU <= 0 {
		c.PostCPU = d.PostCPU
	}
	if c.PollIterCPU <= 0 {
		c.PollIterCPU = d.PollIterCPU
	}
	if c.LookupVisitCPU <= 0 {
		c.LookupVisitCPU = d.LookupVisitCPU
	}
	if c.EntryBuildCPU <= 0 {
		c.EntryBuildCPU = d.EntryBuildCPU
	}
	if c.EntryInsertCPU <= 0 {
		c.EntryInsertCPU = d.EntryInsertCPU
	}
	if c.CopyBandwidth <= 0 {
		c.CopyBandwidth = d.CopyBandwidth
	}
	return c
}

// Stats counts what a DLFS instance did, including virtual time spent in
// each stage of the Fig 4 pipeline (prep → post → poll → copy).
type Stats struct {
	SamplesRead   int64
	BytesToApp    int64
	BytesFetched  int64 // bytes moved from devices into the sample cache
	Commands      int64 // SPDK commands posted
	CacheHits     int64 // reads served by the V bit
	PollIters     int64
	LookupVisits  int64
	CopyJobs      int64
	EdgeSamples   int64
	ChunksFetched int64

	// Stage time accounting (virtual nanoseconds).
	PrepTime sim.Duration // request preparation + lookup CPU
	PostTime sim.Duration // queue-pair posting CPU
	PollTime sim.Duration // busy-poll iterations on the I/O core
	CopyTime sim.Duration // copy-thread memcpy time
}

// FS is one compute node's DLFS instance. All methods taking a *sim.Proc
// must be called from a process of the instance's engine.
type FS struct {
	cfg       Config
	node      *cluster.Node
	job       *cluster.Job
	ds        *dataset.Dataset
	dir       *directory.Directory
	env       *spdk.Env
	arena     *hugepage.Arena
	queues    []nvme.Queue // index = storage node ID (the per-device RPQ binding)
	pollGroup *spdk.PollGroup

	// keyToIdx maps 48-bit sample keys back to dataset indices; every node
	// derives it from the shared manifest.
	keyToIdx map[uint64]int
	// placedByIdx is the global physical layout per dataset index.
	placedByIdx []plan.Placed
	nodeOfIdx   []uint16

	copyQ    *sim.Queue[copyJob]
	poolDone bool

	// Single-sample read cache (V-bit units), keyed by dataset index.
	readCache map[int]*unit
	readLRU   []int

	unitSeq int
	stats   Stats
}

// Common errors.
var (
	ErrNotFound  = errors.New("dlfs: no such sample")
	ErrUnmounted = errors.New("dlfs: file system unmounted")
	ErrHandle    = errors.New("dlfs: invalid handle")
	ErrIO        = errors.New("dlfs: device I/O error")
)

// Node returns the compute node this instance runs on.
func (fs *FS) Node() *cluster.Node { return fs.node }

// Directory returns this node's directory replica.
func (fs *FS) Directory() *directory.Directory { return fs.dir }

// Config returns the effective configuration.
func (fs *FS) Config() Config { return fs.cfg }

// Stats returns a copy of the instance counters.
func (fs *FS) Stats() Stats { return fs.stats }

// Arena exposes the sample cache arena (tests assert no leaks).
func (fs *FS) Arena() *hugepage.Arena { return fs.arena }

// unit is one fetch granule: a whole data chunk, an edge sample, or — in
// sample-level mode — a single sample.
type unit struct {
	node    uint16
	offset  int64
	length  int32
	samples []plan.Placed

	chunks    []*hugepage.Chunk
	traceID   int   // sequence number for trace correlation
	epIdx     int   // position in the owning epoch's unit list
	pending   int   // outstanding device commands
	fetchErr  error // first device error, surfaced to readers
	ready     bool
	remaining int // samples not yet copied out
	refs      []directory.EntryRef
}

// data returns the unit's byte range [off, off+n) gathered from its cache
// chunks; off is relative to unit.offset.
func (u *unit) data(chunkSize int, off int64, n int32, dst []byte) {
	copied := 0
	for copied < int(n) {
		pos := off + int64(copied)
		ci := int(pos) / chunkSize
		within := int(pos) % chunkSize
		src := u.chunks[ci].Bytes()[within:]
		copied += copy(dst[copied:n], src)
	}
}

type copyJob struct {
	u   *unit
	p   plan.Placed
	dst []byte
	wg  *sim.WaitGroup
}

func (fs *FS) startCopyPool() {
	for i := 0; i < fs.cfg.CopyThreads; i++ {
		fs.job.Engine().Go(fmt.Sprintf("dlfs%d/copy%d", fs.node.ID, i), func(p *sim.Proc) {
			for {
				job, ok := fs.copyQ.Pop(p)
				if !ok {
					return
				}
				// The copy thread occupies a core for the memcpy.
				fs.node.CPU.Acquire(p)
				if fs.cfg.CopyBandwidth > 0 {
					d := sim.Duration(int64(job.p.Len) * 1e9 / fs.cfg.CopyBandwidth)
					p.Sleep(d)
					fs.stats.CopyTime += d
				}
				job.u.data(fs.cfg.ChunkSize, job.p.Offset-job.u.offset, job.p.Len, job.dst)
				fs.node.CPU.Release()
				fs.stats.CopyJobs++
				fs.stats.BytesToApp += int64(job.p.Len)
				job.u.remaining--
				fs.releaseIfDrained(job.u)
				if job.wg != nil {
					job.wg.Done()
				}
			}
		})
	}
}

// releaseIfDrained frees a unit's cache chunks once every sample in it has
// been copied out, clearing the V bits of its samples.
func (fs *FS) releaseIfDrained(u *unit) {
	if u.remaining > 0 || !u.ready {
		return
	}
	fs.cfg.Trace.Record(fs.job.Engine().Now(), trace.KindFree, u.traceID, u.node, int(u.length))
	for _, ref := range u.refs {
		fs.dir.SetV(ref, false)
	}
	for _, c := range u.chunks {
		fs.arena.Free(c) //nolint:errcheck // chunks owned exclusively by the unit
	}
	u.chunks = nil
}

// Unmount stops the copy pool and releases the cache. The directory dies
// with the instance, as the paper's ephemeral design prescribes.
func (fs *FS) Unmount() {
	if fs.poolDone {
		return
	}
	fs.poolDone = true
	fs.copyQ.Close()
	fs.arena.Reset()
}
