// Package crail models a Crail-style disaggregated storage middleware
// (Stuedi et al., IEEE Data Eng. Bull. 2017) as an extension baseline.
// The paper's related-work section singles out the property that matters:
// "Contrary to Crail's centralized metadata management, DLFS maintains
// metadata locally which reduces the potential bottleneck during sample
// lookup."
//
// Accordingly this model gives Crail an RDMA data path just as fast as
// Octopus' but routes *every* metadata lookup through one metadata server
// node, whose single service core becomes the bottleneck as clients
// scale — the behaviour Fig 10's extension column demonstrates.
package crail

import (
	"errors"
	"fmt"

	"dlfs/internal/cluster"
	"dlfs/internal/nvme"
	"dlfs/internal/sim"
)

// Costs is the software cost model.
type Costs struct {
	ClientCPU   sim.Duration // per-op client bookkeeping
	NamenodeCPU sim.Duration // metadata service per lookup at the namenode
	RDMASetup   sim.Duration // per data-path verb
}

// DefaultCosts mirrors Crail's fast-RPC numbers: ~1 µs namenode service.
func DefaultCosts() Costs {
	return Costs{ClientCPU: 400, NamenodeCPU: 1000, RDMASetup: 1200}
}

type meta struct {
	owner  int
	offset int64
	size   int64
}

// FS is a Crail instance over a job; node 0 hosts the namenode.
type FS struct {
	job   *cluster.Job
	costs Costs
	files map[string]*meta
	next  []int64

	namenode *sim.Server // the single metadata service core

	lookups int64
}

// NamenodeID is the node hosting the centralized metadata service.
const NamenodeID = 0

// New creates a Crail spanning the job.
func New(job *cluster.Job, costs Costs) *FS {
	if costs == (Costs{}) {
		costs = DefaultCosts()
	}
	return &FS{
		job:      job,
		costs:    costs,
		files:    make(map[string]*meta),
		next:     make([]int64, job.N()),
		namenode: sim.NewServer(job.Engine(), "crail/namenode", 1),
	}
}

// ErrNotFound reports a missing file.
var ErrNotFound = errors.New("crail: no such file")

// Put stores a file at population time, striping files across nodes
// round-robin (untimed, like the other baselines' population).
func (fs *FS) Put(name string, data []byte) error {
	if _, dup := fs.files[name]; dup {
		return fmt.Errorf("crail: file exists: %s", name)
	}
	owner := len(fs.files) % fs.job.N()
	dev := fs.job.Node(owner).Device
	if dev == nil {
		return fmt.Errorf("crail: node %d has no device", owner)
	}
	off := fs.next[owner]
	if _, err := dev.Store().WriteAt(data, off); err != nil {
		return err
	}
	fs.next[owner] += (int64(len(data)) + 4095) / 4096 * 4096
	fs.files[name] = &meta{owner: owner, offset: off, size: int64(len(data))}
	return nil
}

// NumFiles reports stored files.
func (fs *FS) NumFiles() int { return len(fs.files) }

// Lookups reports metadata operations served by the namenode.
func (fs *FS) Lookups() int64 { return fs.lookups }

// NamenodeUtilization reports the metadata core's time-average load — the
// bottleneck indicator.
func (fs *FS) NamenodeUtilization() float64 { return fs.namenode.Utilization() }

// Lookup resolves a name from clientNode: always an RPC to the namenode.
func (fs *FS) Lookup(p *sim.Proc, clientNode int, name string) (int64, error) {
	fs.lookups++
	p.Sleep(fs.costs.ClientCPU)
	net := fs.job.Network()
	net.Message(p, clientNode, NamenodeID)
	fs.namenode.Use(p, fs.costs.NamenodeCPU)
	net.Message(p, NamenodeID, clientNode)
	m, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return m.size, nil
}

// ReadFile reads a full file from clientNode: the namenode lookup, then a
// one-sided RDMA read of the data at its owner.
func (fs *FS) ReadFile(p *sim.Proc, clientNode int, name string, buf []byte) (int, error) {
	if _, err := fs.Lookup(p, clientNode, name); err != nil {
		return 0, err
	}
	m := fs.files[name]
	n := int64(len(buf))
	if n > m.size {
		n = m.size
	}
	p.Sleep(fs.costs.RDMASetup)
	dev := fs.job.Node(m.owner).Device
	if err := dev.SyncIO(p, &nvme.Command{Op: nvme.OpRead, Offset: m.offset, Buf: buf[:n]}); err != nil {
		return 0, err
	}
	fs.job.Network().Transfer(p, m.owner, clientNode, n)
	return int(n), nil
}
