package crail

import (
	"errors"
	"fmt"
	"testing"

	"dlfs/internal/cluster"
	"dlfs/internal/dataset"
	"dlfs/internal/sim"
)

func newFS(e *sim.Engine, nodes int) (*FS, *cluster.Job) {
	job := cluster.NewJob(e, nodes, cluster.DefaultNodeSpec())
	return New(job, Costs{}), job
}

func TestPutReadBack(t *testing.T) {
	e := sim.NewEngine()
	fs, _ := newFS(e, 4)
	ds := dataset.Generate(dataset.Config{Label: "cr", Seed: 3, NumSamples: 30, Dist: dataset.Fixed(2000)})
	for i := 0; i < ds.Len(); i++ {
		if err := fs.Put(ds.Samples[i].Name, ds.Content(i)); err != nil {
			t.Fatal(err)
		}
	}
	if fs.NumFiles() != 30 {
		t.Fatal("file count")
	}
	e.Go("c", func(p *sim.Proc) {
		buf := make([]byte, 2000)
		for i := 0; i < ds.Len(); i++ {
			n, err := fs.ReadFile(p, 2, ds.Samples[i].Name, buf)
			if err != nil || n != 2000 {
				t.Errorf("read %d: n=%d err=%v", i, n, err)
				return
			}
			if dataset.ChecksumBytes(buf) != ds.Checksum(i) {
				t.Errorf("sample %d corrupt through crail", i)
			}
		}
	})
	e.RunAll()
	if fs.Lookups() != 30 {
		t.Fatalf("lookups = %d", fs.Lookups())
	}
}

func TestErrors(t *testing.T) {
	e := sim.NewEngine()
	fs, _ := newFS(e, 2)
	fs.Put("a", []byte("x")) //nolint:errcheck
	if err := fs.Put("a", []byte("y")); err == nil {
		t.Fatal("duplicate accepted")
	}
	e.Go("c", func(p *sim.Proc) {
		if _, err := fs.ReadFile(p, 0, "nope", make([]byte, 4)); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing: %v", err)
		}
	})
	e.RunAll()
}

func TestNamenodeSerializesAllClients(t *testing.T) {
	// Unlike Octopus (hash-distributed metadata), every Crail lookup lands
	// on the namenode: concurrent clients serialize there regardless of
	// cluster size.
	makespan := func(nodes int) sim.Time {
		e := sim.NewEngine()
		fs, _ := newFS(e, nodes)
		for i := 0; i < 64; i++ {
			fs.Put(fmt.Sprintf("f%d", i), []byte("x")) //nolint:errcheck
		}
		const perClient = 200
		for c := 0; c < nodes; c++ {
			c := c
			e.Go("c", func(p *sim.Proc) {
				for i := 0; i < perClient; i++ {
					fs.Lookup(p, c, fmt.Sprintf("f%d", i%64)) //nolint:errcheck
				}
			})
		}
		return e.RunAll()
	}
	two := makespan(2)
	sixteen := makespan(16)
	// Each client issues the same count, so 16 nodes mean 8× the lookups —
	// all served by one namenode core. At 16 nodes the makespan must sit
	// on the namenode's serial floor (3200 lookups × 1 µs = 3.2 ms),
	// i.e. adding clients bought no aggregate lookup throughput at all.
	floor := sim.Time(16 * 200 * 1000)
	if sixteen < floor || sixteen > floor*11/10 {
		t.Fatalf("16-node makespan %v, want ≈%v (namenode serial floor)", sixteen, floor)
	}
	// A distributed-metadata system would keep the makespan ~flat as
	// clients grow; Crail's grows with the total lookup count.
	if sixteen < two*3 {
		t.Fatalf("namenode did not bottleneck: 2 nodes %v vs 16 nodes %v", two, sixteen)
	}
}

func TestNamenodeUtilizationHigh(t *testing.T) {
	e := sim.NewEngine()
	fs, _ := newFS(e, 8)
	for i := 0; i < 32; i++ {
		fs.Put(fmt.Sprintf("f%d", i), []byte("x")) //nolint:errcheck
	}
	for c := 0; c < 8; c++ {
		c := c
		e.Go("c", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				fs.Lookup(p, c, fmt.Sprintf("f%d", i%32)) //nolint:errcheck
			}
		})
	}
	e.RunAll()
	if u := fs.NamenodeUtilization(); u < 0.5 {
		t.Fatalf("namenode utilization %.2f under 8-client load, want high", u)
	}
}

func TestDataStripedAcrossNodes(t *testing.T) {
	e := sim.NewEngine()
	fs, job := newFS(e, 4)
	for i := 0; i < 16; i++ {
		fs.Put(fmt.Sprintf("f%d", i), make([]byte, 4096)) //nolint:errcheck
	}
	// Every node's device should hold some data.
	for i := 0; i < 4; i++ {
		if job.Node(i).Device.Store().HighWater() == 0 {
			t.Fatalf("node %d holds no data: striping broken", i)
		}
	}
}
