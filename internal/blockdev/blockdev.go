// Package blockdev provides the in-memory backing store that stands in for
// NVMe media. It stores real bytes in fixed-size extents allocated lazily,
// so a 1 TiB-addressable device costs memory only for the regions actually
// written. All reads and writes are byte-addressed; alignment to media
// blocks is the concern of the device model above it.
//
// Store is safe for concurrent use: the live (non-simulated) DLFS path
// reads from many goroutines, and TCP targets serve requests concurrently.
package blockdev

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// extentSize is the allocation granule. 1 MiB keeps the extent map small
// while bounding slack for small datasets.
const extentSize = 1 << 20

// zeroExtent backs views of never-written regions, which read as zeros.
// It is shared by every store and must never be written; WriteAt always
// materialises a fresh extent instead.
var zeroExtent = make([]byte, extentSize)

// Store is a sparse in-memory byte store of fixed capacity.
type Store struct {
	mu       sync.RWMutex
	capacity int64
	extents  map[int64][]byte // extent index -> extentSize bytes
	written  int64            // high-water mark of bytes stored (for stats)

	// epoch is a seqlock over the store contents: WriteAt increments it
	// to an odd value on entry and back to even on exit. A reader that
	// captured segments with View can compare epochs to detect that a
	// write landed (or is landing) since capture and fall back to a
	// locked copy. Extents are never freed or reallocated, so view
	// slices always reference live memory; the epoch only guards their
	// *contents*.
	epoch atomic.Uint64
}

// ErrOutOfRange reports access beyond the device capacity.
var ErrOutOfRange = errors.New("blockdev: access out of range")

// New returns a store with the given capacity in bytes.
func New(capacity int64) *Store {
	if capacity <= 0 {
		panic("blockdev: capacity must be positive")
	}
	return &Store{capacity: capacity, extents: make(map[int64][]byte)}
}

// Capacity returns the device capacity in bytes.
func (s *Store) Capacity() int64 { return s.capacity }

// AllocatedBytes reports how much extent memory is materialised.
func (s *Store) AllocatedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.extents)) * extentSize
}

func (s *Store) check(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > s.capacity {
		return fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, off, n, s.capacity)
	}
	return nil
}

// WriteAt stores p at byte offset off.
func (s *Store) WriteAt(p []byte, off int64) (int, error) {
	if err := s.check(off, len(p)); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch.Add(1) // odd: write in flight
	defer s.epoch.Add(1)
	if end := off + int64(len(p)); end > s.written {
		s.written = end
	}
	n := 0
	for n < len(p) {
		ext := (off + int64(n)) / extentSize
		within := (off + int64(n)) % extentSize
		buf, ok := s.extents[ext]
		if !ok {
			buf = make([]byte, extentSize)
			s.extents[ext] = buf
		}
		n += copy(buf[within:], p[n:])
	}
	return n, nil
}

// ReadAt fills p from byte offset off. Unwritten regions read as zeros,
// like fresh flash after a format.
func (s *Store) ReadAt(p []byte, off int64) (int, error) {
	if err := s.check(off, len(p)); err != nil {
		return 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for n < len(p) {
		ext := (off + int64(n)) / extentSize
		within := (off + int64(n)) % extentSize
		chunk := extentSize - int(within)
		if rem := len(p) - n; chunk > rem {
			chunk = rem
		}
		if buf, ok := s.extents[ext]; ok {
			copy(p[n:n+chunk], buf[within:])
		} else {
			zero(p[n : n+chunk])
		}
		n += chunk
	}
	return n, nil
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// WriteEpoch reports the store's write epoch. It is even when no write
// is in flight and odd while one is; any change between two reads means
// the contents may have moved under a zero-copy view taken in between.
func (s *Store) WriteEpoch() uint64 { return s.epoch.Load() }

// View appends to dst read-only segments that alias the store's memory
// for [off, off+n) — one segment per extent crossed, with unwritten
// extents served from a shared zero page — and returns the extended
// slice plus the write epoch at capture time. No bytes are copied.
//
// The segments stay valid memory forever (extents are never freed), but
// their contents are only stable under the write-once read-many model:
// callers that must not transmit torn data re-check WriteEpoch against
// the returned epoch immediately before using the view and fall back to
// ReadAt (which takes the lock) on a mismatch.
func (s *Store) View(off int64, n int, dst [][]byte) ([][]byte, uint64, error) {
	if err := s.check(off, n); err != nil {
		return dst, 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Under RLock no writer holds the lock, so the epoch is even and
	// every segment captured below is consistent as of this epoch.
	epoch := s.epoch.Load()
	done := 0
	for done < n {
		ext := (off + int64(done)) / extentSize
		within := (off + int64(done)) % extentSize
		chunk := extentSize - int(within)
		if rem := n - done; chunk > rem {
			chunk = rem
		}
		buf, ok := s.extents[ext]
		if !ok {
			buf = zeroExtent
		}
		dst = append(dst, buf[within:int(within)+chunk])
		done += chunk
	}
	return dst, epoch, nil
}

// HighWater reports one past the largest byte offset ever written.
func (s *Store) HighWater() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.written
}
