// Package blockdev provides the in-memory backing store that stands in for
// NVMe media. It stores real bytes in fixed-size extents allocated lazily,
// so a 1 TiB-addressable device costs memory only for the regions actually
// written. All reads and writes are byte-addressed; alignment to media
// blocks is the concern of the device model above it.
//
// Store is safe for concurrent use: the live (non-simulated) DLFS path
// reads from many goroutines, and TCP targets serve requests concurrently.
package blockdev

import (
	"errors"
	"fmt"
	"sync"
)

// extentSize is the allocation granule. 1 MiB keeps the extent map small
// while bounding slack for small datasets.
const extentSize = 1 << 20

// Store is a sparse in-memory byte store of fixed capacity.
type Store struct {
	mu       sync.RWMutex
	capacity int64
	extents  map[int64][]byte // extent index -> extentSize bytes
	written  int64            // high-water mark of bytes stored (for stats)
}

// ErrOutOfRange reports access beyond the device capacity.
var ErrOutOfRange = errors.New("blockdev: access out of range")

// New returns a store with the given capacity in bytes.
func New(capacity int64) *Store {
	if capacity <= 0 {
		panic("blockdev: capacity must be positive")
	}
	return &Store{capacity: capacity, extents: make(map[int64][]byte)}
}

// Capacity returns the device capacity in bytes.
func (s *Store) Capacity() int64 { return s.capacity }

// AllocatedBytes reports how much extent memory is materialised.
func (s *Store) AllocatedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.extents)) * extentSize
}

func (s *Store) check(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > s.capacity {
		return fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, off, n, s.capacity)
	}
	return nil
}

// WriteAt stores p at byte offset off.
func (s *Store) WriteAt(p []byte, off int64) (int, error) {
	if err := s.check(off, len(p)); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if end := off + int64(len(p)); end > s.written {
		s.written = end
	}
	n := 0
	for n < len(p) {
		ext := (off + int64(n)) / extentSize
		within := (off + int64(n)) % extentSize
		buf, ok := s.extents[ext]
		if !ok {
			buf = make([]byte, extentSize)
			s.extents[ext] = buf
		}
		n += copy(buf[within:], p[n:])
	}
	return n, nil
}

// ReadAt fills p from byte offset off. Unwritten regions read as zeros,
// like fresh flash after a format.
func (s *Store) ReadAt(p []byte, off int64) (int, error) {
	if err := s.check(off, len(p)); err != nil {
		return 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for n < len(p) {
		ext := (off + int64(n)) / extentSize
		within := (off + int64(n)) % extentSize
		chunk := extentSize - int(within)
		if rem := len(p) - n; chunk > rem {
			chunk = rem
		}
		if buf, ok := s.extents[ext]; ok {
			copy(p[n:n+chunk], buf[within:])
		} else {
			zero(p[n : n+chunk])
		}
		n += chunk
	}
	return n, nil
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// HighWater reports one past the largest byte offset ever written.
func (s *Store) HighWater() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.written
}
