// Package blockdev provides the in-memory backing store that stands in for
// NVMe media. It stores real bytes in fixed-size extents allocated lazily,
// so a 1 TiB-addressable device costs memory only for the regions actually
// written. All reads and writes are byte-addressed; alignment to media
// blocks is the concern of the device model above it.
//
// Store is safe for concurrent use: the live (non-simulated) DLFS path
// reads from many goroutines, and TCP targets serve requests concurrently.
package blockdev

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// extentSize is the allocation granule. 1 MiB keeps the extent map small
// while bounding slack for small datasets.
const extentSize = 1 << 20

// zeroExtent backs views of never-written regions, which read as zeros.
// It is shared by every store and must never be written; WriteAt always
// materialises a fresh extent instead.
var zeroExtent = make([]byte, extentSize)

// Store is a sparse in-memory byte store of fixed capacity.
type Store struct {
	mu       sync.RWMutex
	capacity int64
	extents  map[int64][]byte // extent index -> extentSize bytes
	written  int64            // high-water mark of bytes stored (for stats)

	// epoch is a seqlock over the store contents: WriteAt increments it
	// to an odd value on entry and back to even on exit. A reader that
	// captured segments with View can compare epochs to detect that a
	// write landed (or is landing) since capture and fall back to a
	// locked copy. Extents are never freed or reallocated, so view
	// slices always reference live memory; the epoch only guards their
	// *contents*.
	epoch atomic.Uint64

	// viewPins counts flushers that are currently transmitting pinned
	// zero-copy views. While it is nonzero, writers clone any extent
	// they touch and swap the clone into the map instead of mutating in
	// place, so a pinned view's memory is immutable for as long as the
	// pin is held. Together with the epoch this closes the
	// check-then-use window: a flusher Pins, re-checks the epoch, and
	// transmits — a writer that raced past the epoch check is
	// guaranteed (by the seq-cst ordering of the two atomics) to have
	// observed the pin and gone copy-on-write, so the transmitted bytes
	// are the untorn pre-write image.
	viewPins atomic.Int64

	// cowClones counts extents cloned by the copy-on-write path, for
	// observability of how often writes collide with in-flight views.
	cowClones atomic.Int64

	// adoptedExts counts extents landed zero-copy by WriteVecAdopt — the
	// write-side analogue of zero-copy read views.
	adoptedExts atomic.Int64
}

// ErrOutOfRange reports access beyond the device capacity.
var ErrOutOfRange = errors.New("blockdev: access out of range")

// New returns a store with the given capacity in bytes.
func New(capacity int64) *Store {
	if capacity <= 0 {
		panic("blockdev: capacity must be positive")
	}
	return &Store{capacity: capacity, extents: make(map[int64][]byte)}
}

// Capacity returns the device capacity in bytes.
func (s *Store) Capacity() int64 { return s.capacity }

// AllocatedBytes reports how much extent memory is materialised.
func (s *Store) AllocatedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.extents)) * extentSize
}

func (s *Store) check(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > s.capacity {
		return fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, off, n, s.capacity)
	}
	return nil
}

// WriteAt stores p at byte offset off.
func (s *Store) WriteAt(p []byte, off int64) (int, error) {
	if err := s.check(off, len(p)); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch.Add(1) // odd: write in flight
	defer s.epoch.Add(1)
	return s.writeLocked(p, off), nil
}

// writeLocked lands p at off. Caller holds s.mu and has already bumped
// the epoch odd; the epoch bump must happen before the first viewPins
// load below so the seq-cst total order over {epoch, viewPins} gives
// every writer/flusher race exactly one of two safe outcomes (COW here,
// or restage at the flusher).
func (s *Store) writeLocked(p []byte, off int64) int {
	if end := off + int64(len(p)); end > s.written {
		s.written = end
	}
	n := 0
	for n < len(p) {
		ext := (off + int64(n)) / extentSize
		within := (off + int64(n)) % extentSize
		buf, ok := s.extents[ext]
		switch {
		case !ok:
			buf = make([]byte, extentSize)
			s.extents[ext] = buf
		case s.viewPins.Load() > 0:
			// A flusher may be transmitting a view aliasing this
			// extent: never mutate it in place. Clone, write the
			// clone, and swap it into the map — the pinned view keeps
			// the old (untorn) array; future Views capture the clone.
			clone := make([]byte, extentSize)
			copy(clone, buf)
			s.extents[ext] = clone
			s.cowClones.Add(1)
			buf = clone
		}
		n += copy(buf[within:], p[n:])
	}
	return n
}

// WriteVecAt lands a gathered write — data carries the extents'
// bytes concatenated in (off, length) order — under a single lock
// acquisition and a single epoch bump, so a multi-extent checkpoint
// stripe becomes visible to readers atomically rather than as a
// sequence of independently-torn writes.
func (s *Store) WriteVecAt(data []byte, offs []int64, lens []int) (int, error) {
	total := 0
	for i, ln := range lens {
		if err := s.check(offs[i], ln); err != nil {
			return 0, err
		}
		total += ln
	}
	if total != len(data) {
		return 0, fmt.Errorf("%w: gathered %d bytes for %d described", ErrOutOfRange, len(data), total)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch.Add(1) // odd: write in flight
	defer s.epoch.Add(1)
	n := 0
	for i, ln := range lens {
		n += s.writeLocked(data[n:n+ln], offs[i])
	}
	return n, nil
}

// WriteVecAdopt lands a gathered write like WriteVecAt, but any span of
// it that covers a whole extent-aligned extent is adopted zero-copy: the
// corresponding sub-slice of data becomes the extent's backing array by
// pointer swap instead of being copied into store memory. Adoption is
// strictly better than copy-on-write — the displaced array is left
// intact, so a pinned view that aliases it keeps reading the untorn
// pre-write image for free. Misaligned or partial spans fall back to the
// copying path under the same single lock acquisition and epoch bump.
//
// It returns the byte count and the number of extents adopted. When
// adopted > 0 the store owns sub-slices of data's backing array: the
// caller must treat the buffer as transferred and never recycle or
// mutate it again.
func (s *Store) WriteVecAdopt(data []byte, offs []int64, lens []int) (int, int, error) {
	total := 0
	for i, ln := range lens {
		if err := s.check(offs[i], ln); err != nil {
			return 0, 0, err
		}
		total += ln
	}
	if total != len(data) {
		return 0, 0, fmt.Errorf("%w: gathered %d bytes for %d described", ErrOutOfRange, len(data), total)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch.Add(1) // odd: write in flight
	defer s.epoch.Add(1)
	n, adopted := 0, 0
	for i, ln := range lens {
		seg := data[n : n+ln]
		off := offs[i]
		done := 0
		for done < ln {
			within := (off + int64(done)) % extentSize
			chunk := extentSize - int(within)
			if rem := ln - done; chunk > rem {
				chunk = rem
			}
			if within == 0 && chunk == extentSize {
				ext := (off + int64(done)) / extentSize
				s.extents[ext] = seg[done : done+extentSize : done+extentSize]
				adopted++
			} else {
				s.writeLocked(seg[done:done+chunk], off+int64(done))
			}
			done += chunk
		}
		if end := off + int64(ln); end > s.written {
			s.written = end
		}
		n += ln
	}
	if adopted > 0 {
		s.adoptedExts.Add(int64(adopted))
	}
	return n, adopted, nil
}

// WriteVecAdoptSegs is the per-segment form of WriteVecAdopt: segs[i]
// lands at offs[i], all under one lock acquisition and one epoch bump.
// Segments that cover whole aligned extents are adopted by pointer
// swap; the rest are copied.
//
// The returned recycle list holds buffers that are safe to hand back
// to a pool: input segments that were fully copied (the store kept no
// reference), and displaced extent arrays that no pinned view can be
// transmitting — a displaced array is returned only when viewPins was
// zero after the epoch bump, so any flusher that pins later re-checks
// the epoch, sees this write, and restages instead of touching the old
// array. Input segments that were adopted (fully or partially) are
// owned by the store and never appear in the list.
func (s *Store) WriteVecAdoptSegs(segs [][]byte, offs []int64) (int, int, [][]byte, error) {
	for i, seg := range segs {
		if err := s.check(offs[i], len(seg)); err != nil {
			return 0, 0, nil, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch.Add(1) // odd: write in flight
	defer s.epoch.Add(1)
	n, adopted := 0, 0
	var recycle [][]byte
	for i, seg := range segs {
		off, ln := offs[i], len(seg)
		done, segAdopted := 0, false
		for done < ln {
			within := (off + int64(done)) % extentSize
			chunk := extentSize - int(within)
			if rem := ln - done; chunk > rem {
				chunk = rem
			}
			if within == 0 && chunk == extentSize {
				ext := (off + int64(done)) / extentSize
				if old, ok := s.extents[ext]; ok && s.viewPins.Load() == 0 {
					recycle = append(recycle, old)
				}
				s.extents[ext] = seg[done : done+extentSize : done+extentSize]
				adopted++
				segAdopted = true
			} else {
				s.writeLocked(seg[done:done+chunk], off+int64(done))
			}
			done += chunk
		}
		if !segAdopted && ln > 0 {
			recycle = append(recycle, seg)
		}
		if end := off + int64(ln); end > s.written {
			s.written = end
		}
		n += ln
	}
	if adopted > 0 {
		s.adoptedExts.Add(int64(adopted))
	}
	return n, adopted, recycle, nil
}

// Sync is the durability barrier of the device model: it returns only
// once every write that completed before the call is stable. For the
// in-memory store that is a write-lock acquisition — any in-flight
// writeLocked has released the lock, so its bytes are in the extent
// map and visible to every subsequent ReadAt.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return nil
}

// PinViews marks a zero-copy transmission in flight: until the matching
// UnpinViews, writers copy-on-write any extent they touch instead of
// mutating memory that captured views may alias.
func (s *Store) PinViews() { s.viewPins.Add(1) }

// UnpinViews releases a PinViews pin.
func (s *Store) UnpinViews() { s.viewPins.Add(-1) }

// CowClones reports how many extents the copy-on-write path has cloned
// because a write landed while views were pinned.
func (s *Store) CowClones() int64 { return s.cowClones.Load() }

// AdoptedExtents reports how many extents WriteVecAdopt has landed by
// pointer swap instead of copy.
func (s *Store) AdoptedExtents() int64 { return s.adoptedExts.Load() }

// ReadAt fills p from byte offset off. Unwritten regions read as zeros,
// like fresh flash after a format.
func (s *Store) ReadAt(p []byte, off int64) (int, error) {
	if err := s.check(off, len(p)); err != nil {
		return 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for n < len(p) {
		ext := (off + int64(n)) / extentSize
		within := (off + int64(n)) % extentSize
		chunk := extentSize - int(within)
		if rem := len(p) - n; chunk > rem {
			chunk = rem
		}
		if buf, ok := s.extents[ext]; ok {
			copy(p[n:n+chunk], buf[within:])
		} else {
			zero(p[n : n+chunk])
		}
		n += chunk
	}
	return n, nil
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// WriteEpoch reports the store's write epoch. It is even when no write
// is in flight and odd while one is; any change between two reads means
// the contents may have moved under a zero-copy view taken in between.
func (s *Store) WriteEpoch() uint64 { return s.epoch.Load() }

// View appends to dst read-only segments that alias the store's memory
// for [off, off+n) — one segment per extent crossed, with unwritten
// extents served from a shared zero page — and returns the extended
// slice plus the write epoch at capture time. No bytes are copied.
//
// The segments stay valid memory forever (extents are never freed), but
// their contents are only stable under the write-once read-many model:
// callers that must not transmit torn data re-check WriteEpoch against
// the returned epoch immediately before using the view and fall back to
// ReadAt (which takes the lock) on a mismatch.
func (s *Store) View(off int64, n int, dst [][]byte) ([][]byte, uint64, error) {
	if err := s.check(off, n); err != nil {
		return dst, 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Under RLock no writer holds the lock, so the epoch is even and
	// every segment captured below is consistent as of this epoch.
	epoch := s.epoch.Load()
	done := 0
	for done < n {
		ext := (off + int64(done)) / extentSize
		within := (off + int64(done)) % extentSize
		chunk := extentSize - int(within)
		if rem := n - done; chunk > rem {
			chunk = rem
		}
		buf, ok := s.extents[ext]
		if !ok {
			buf = zeroExtent
		}
		dst = append(dst, buf[within:int(within)+chunk])
		done += chunk
	}
	return dst, epoch, nil
}

// HighWater reports one past the largest byte offset ever written.
func (s *Store) HighWater() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.written
}
