package blockdev

// Race battery for the write path: concurrent WriteAt/WriteVecAt against
// in-flight zero-copy views must never surface torn extents. Writers
// stamp whole regions with a single generation byte, so any mixed-
// generation observation is a torn read. Run under -race (the Makefile
// race target covers this package).

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

// concat flattens view segments for comparison.
func concat(segs [][]byte) []byte {
	var out []byte
	for _, s := range segs {
		out = append(out, s...)
	}
	return out
}

// oneGeneration reports whether every byte of b equals its first byte.
func oneGeneration(b []byte) (byte, bool) {
	for _, c := range b {
		if c != b[0] {
			return b[0], false
		}
	}
	return b[0], true
}

// TestCopyOnWriteUnderPin is the deterministic core of the COW
// guarantee: a write landing while views are pinned clones the extent,
// so the pinned view keeps the untorn pre-write image.
func TestCopyOnWriteUnderPin(t *testing.T) {
	s := New(8 << 20)
	old := bytes.Repeat([]byte{0xAA}, 2<<20) // spans two extents
	if _, err := s.WriteAt(old, 0); err != nil {
		t.Fatal(err)
	}
	segs, epoch, err := s.View(0, len(old), nil)
	if err != nil {
		t.Fatal(err)
	}
	s.PinViews()
	defer s.UnpinViews()
	if s.WriteEpoch() != epoch {
		t.Fatal("epoch moved with no write")
	}
	niu := bytes.Repeat([]byte{0xBB}, 2<<20)
	if _, err := s.WriteAt(niu, 0); err != nil {
		t.Fatal(err)
	}
	if got := concat(segs); !bytes.Equal(got, old) {
		t.Fatal("pinned view mutated by a write: extent not cloned")
	}
	if s.CowClones() < 2 {
		t.Fatalf("CowClones = %d, want >= 2 (two pinned extents overwritten)", s.CowClones())
	}
	fresh := make([]byte, 2<<20)
	s.ReadAt(fresh, 0) //nolint:errcheck
	if !bytes.Equal(fresh, niu) {
		t.Fatal("post-write ReadAt does not see the new bytes")
	}
}

// TestRaceWriteVsPinnedView runs the flusher protocol (capture view →
// pin → re-check epoch → transmit) against a concurrent writer over an
// extent-pair table: the write region overlaps, is adjacent to (same
// extents, disjoint bytes), or is contained in the viewed region. When
// the post-pin epoch check passes, the view must be single-generation
// and immutable for the duration of the simulated transmission.
func TestRaceWriteVsPinnedView(t *testing.T) {
	const ext = int64(extentSize)
	cases := []struct {
		name              string
		viewOff, writeOff int64
		viewLen, writeLen int
	}{
		{"overlapping", ext / 2, ext, int(ext), int(ext)},
		{"adjacent-same-extent", 0, ext / 2, int(ext / 2), int(ext / 2)},
		{"contained", 0, ext / 2, 2 * int(ext), int(ext)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(16 << 20)
			base := bytes.Repeat([]byte{1}, tc.viewLen)
			if _, err := s.WriteAt(base, tc.viewOff); err != nil {
				t.Fatal(err)
			}
			if tc.writeOff+int64(tc.writeLen) > tc.viewOff+int64(tc.viewLen) {
				// keep the whole write inside the region the reader
				// knows how to validate
				if _, err := s.WriteAt(bytes.Repeat([]byte{1}, tc.writeLen), tc.writeOff); err != nil {
					t.Fatal(err)
				}
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // writer: stamps generations 2..255 over its region
				defer wg.Done()
				gen := byte(2)
				buf := make([]byte, tc.writeLen)
				for {
					select {
					case <-stop:
						return
					default:
					}
					for i := range buf {
						buf[i] = gen
					}
					s.WriteAt(buf, tc.writeOff) //nolint:errcheck
					gen++
					if gen == 0 {
						gen = 2
					}
				}
			}()
			matched := 0
			for iter := 0; iter < 3000; iter++ {
				segs, epoch, err := s.View(tc.viewOff, tc.viewLen, nil)
				if err != nil {
					t.Fatal(err)
				}
				s.PinViews()
				if s.WriteEpoch() == epoch {
					matched++
					first := concat(segs)
					// a stable epoch means no write is in flight, so the
					// slice of the view the writer covers must be exactly
					// one generation — anything mixed is a torn extent
					lo := max(tc.viewOff, tc.writeOff)
					hi := min(tc.viewOff+int64(tc.viewLen), tc.writeOff+int64(tc.writeLen))
					if lo < hi {
						span := first[lo-tc.viewOff : hi-tc.viewOff]
						if _, ok := oneGeneration(span); !ok {
							t.Fatal("torn extent: mixed generations inside a stable-epoch view")
						}
					}
					// transmit window: the pinned bytes must not move
					second := concat(segs)
					if !bytes.Equal(first, second) {
						t.Fatal("pinned view mutated mid-transmission")
					}
				}
				s.UnpinViews()
			}
			close(stop)
			wg.Wait()
			if matched == 0 {
				t.Log("no iteration saw a stable epoch (heavy write load); COW path still exercised")
			}
		})
	}
}

// TestRaceWriteVecAtomicity checks that a gathered multi-extent write is
// torn-free as a unit: concurrent readers of the whole stripe must
// always see a single generation across every extent, because WriteVecAt
// applies all extents under one lock hold and one epoch bump.
func TestRaceWriteVecAtomicity(t *testing.T) {
	s := New(16 << 20)
	const stripe = 3
	offs := []int64{0, extentSize, 2 * extentSize}
	lens := []int{extentSize, extentSize, extentSize}
	seed := bytes.Repeat([]byte{1}, stripe*extentSize)
	if _, err := s.WriteVecAt(seed, offs, lens); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := byte(2)
		data := make([]byte, stripe*extentSize)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range data {
				data[i] = gen
			}
			s.WriteVecAt(data, offs, lens) //nolint:errcheck
			gen++
			if gen == 0 {
				gen = 2
			}
		}
	}()
	got := make([]byte, stripe*extentSize)
	for iter := 0; iter < 500; iter++ {
		if _, err := s.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if g, ok := oneGeneration(got); !ok {
			t.Fatalf("torn stripe: generations mixed with %d at iter %d", g, iter)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRaceSyncBarrier checks the durability-barrier contract: once a
// write has returned and Sync completes, a read observes its bytes even
// with other writers still running.
func TestRaceSyncBarrier(t *testing.T) {
	s := New(8 << 20)
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // background noise writer on a disjoint region
		defer wg.Done()
		buf := make([]byte, 4096)
		for !done.Load() {
			s.WriteAt(buf, 4<<20) //nolint:errcheck
		}
	}()
	errc := make(chan error, 1)
	go func() {
		defer wg.Done()
		want := bytes.Repeat([]byte{0x5A}, 64<<10)
		for i := 0; i < 200; i++ {
			if _, err := s.WriteAt(want, 0); err != nil {
				errc <- err
				return
			}
			if err := s.Sync(); err != nil {
				errc <- err
				return
			}
			got := make([]byte, len(want))
			s.ReadAt(got, 0) //nolint:errcheck
			if !bytes.Equal(got, want) {
				t.Error("post-Sync read missed a completed write")
				break
			}
		}
		errc <- nil
	}()
	if err := <-errc; err != nil {
		t.Error(err)
	}
	done.Store(true)
	wg.Wait()
}
