package blockdev

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestReadAfterWrite(t *testing.T) {
	s := New(10 << 20)
	data := []byte("hello nvme world")
	if _, err := s.WriteAt(data, 12345); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := s.ReadAt(got, 12345); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	s := New(4 << 20)
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = 0xFF
	}
	if _, err := s.ReadAt(buf, 3<<20); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestCrossExtentWriteRead(t *testing.T) {
	s := New(8 << 20)
	data := make([]byte, 3<<20) // spans 4 extents when offset is unaligned
	for i := range data {
		data[i] = byte(i * 7)
	}
	off := int64(1<<20 - 13)
	if _, err := s.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := s.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-extent round trip mismatch")
	}
}

func TestPartialOverlapReads(t *testing.T) {
	s := New(1 << 20)
	s.WriteAt([]byte{1, 2, 3, 4}, 100) //nolint:errcheck
	got := make([]byte, 8)
	s.ReadAt(got, 98) //nolint:errcheck
	want := []byte{0, 0, 1, 2, 3, 4, 0, 0}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestOutOfRange(t *testing.T) {
	s := New(1000)
	if _, err := s.WriteAt(make([]byte, 10), 995); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write past end: %v", err)
	}
	if _, err := s.ReadAt(make([]byte, 10), -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative read: %v", err)
	}
	if _, err := s.WriteAt(make([]byte, 1000), 0); err != nil {
		t.Fatalf("exact-fit write: %v", err)
	}
}

func TestCapacityAndStats(t *testing.T) {
	s := New(64 << 20)
	if s.Capacity() != 64<<20 {
		t.Fatal("capacity")
	}
	if s.AllocatedBytes() != 0 {
		t.Fatal("fresh store has allocation")
	}
	s.WriteAt([]byte{1}, 5<<20) //nolint:errcheck
	if s.AllocatedBytes() != 1<<20 {
		t.Fatalf("allocated %d", s.AllocatedBytes())
	}
	if s.HighWater() != 5<<20+1 {
		t.Fatalf("high water %d", s.HighWater())
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}

func TestConcurrentAccess(t *testing.T) {
	s := New(32 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for i := range buf {
				buf[i] = byte(g)
			}
			off := int64(g) * (1 << 20)
			for iter := 0; iter < 200; iter++ {
				if _, err := s.WriteAt(buf, off); err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, 4096)
				if _, err := s.ReadAt(got, off); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, buf) {
					t.Errorf("goroutine %d read mismatch", g)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestViewMatchesReadAt(t *testing.T) {
	s := New(8 << 20)
	data := make([]byte, 3<<20) // straddles extent boundaries
	for i := range data {
		data[i] = byte(i*3 + 1)
	}
	off := int64(1<<20 - 77)
	if _, err := s.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	segs, epoch, err := s.View(off, len(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != s.WriteEpoch() {
		t.Fatalf("epoch %d moved to %d with no write", epoch, s.WriteEpoch())
	}
	if len(segs) < 3 {
		t.Fatalf("cross-extent view produced %d segments", len(segs))
	}
	var flat []byte
	for _, seg := range segs {
		flat = append(flat, seg...)
	}
	if !bytes.Equal(flat, data) {
		t.Fatal("view bytes diverge from written data")
	}
}

func TestViewUnwrittenReadsZero(t *testing.T) {
	s := New(4 << 20)
	segs, _, err := s.View(3<<20-100, 200, nil) // never-written region
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, seg := range segs {
		total += len(seg)
		for i, b := range seg {
			if b != 0 {
				t.Fatalf("unwritten view byte %d = %#x", i, b)
			}
		}
	}
	if total != 200 {
		t.Fatalf("view covered %d bytes, want 200", total)
	}
}

func TestViewOutOfRange(t *testing.T) {
	s := New(1000)
	if _, _, err := s.View(995, 10, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("view past end: %v", err)
	}
	if _, _, err := s.View(-1, 4, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative view: %v", err)
	}
}

func TestWriteEpochDetectsOverwrite(t *testing.T) {
	s := New(1 << 20)
	s.WriteAt([]byte("generation one"), 0) //nolint:errcheck
	segs, epoch, err := s.View(0, 14, nil)
	if err != nil {
		t.Fatal(err)
	}
	if epoch%2 != 0 {
		t.Fatalf("epoch %d odd outside a write", epoch)
	}
	if s.WriteEpoch() != epoch {
		t.Fatal("epoch moved with no write")
	}
	s.WriteAt([]byte("generation two"), 0) //nolint:errcheck
	if s.WriteEpoch() == epoch {
		t.Fatal("overwrite did not advance the epoch")
	}
	// The view now exposes the new contents (it aliases store memory):
	// exactly why the epoch check exists.
	if string(segs[0]) != "generation two" {
		t.Fatalf("aliased view reads %q", segs[0])
	}
}

// Views of disjoint extents stay stable while other regions are being
// written concurrently — the hot case on a target serving reads while a
// mount uploads elsewhere. (Same-region write-during-view is excluded by
// the write-once model and guarded by the epoch.)
func TestViewStableUnderDisjointWrites(t *testing.T) {
	s := New(32 << 20)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	s.WriteAt(data, 0) //nolint:errcheck
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 8192)
		for off := int64(16 << 20); ; off += 8192 {
			select {
			case <-stop:
				return
			default:
			}
			if off+8192 > 32<<20 {
				off = 16 << 20
			}
			s.WriteAt(buf, off) //nolint:errcheck
		}
	}()
	for iter := 0; iter < 200; iter++ {
		segs, _, err := s.View(0, len(data), nil)
		if err != nil {
			t.Fatal(err)
		}
		pos := 0
		for _, seg := range segs {
			if !bytes.Equal(seg, data[pos:pos+len(seg)]) {
				t.Fatal("view of quiescent region changed under disjoint writes")
			}
			pos += len(seg)
		}
	}
	close(stop)
	wg.Wait()
}

// Property: read-after-write returns the written bytes at arbitrary
// offsets and lengths, including extent-straddling ones.
func TestReadAfterWriteProperty(t *testing.T) {
	s := New(16 << 20)
	f := func(offRaw uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		off := int64(offRaw) % (16<<20 - int64(len(data)))
		if _, err := s.WriteAt(data, off); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := s.ReadAt(got, off); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
