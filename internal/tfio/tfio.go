// Package tfio is a miniature TensorFlow-style dataset-import pipeline,
// standing in for the customised TensorFlow dataset op the paper builds
// for §IV-E ("we have enabled TensorFlow on top of DLFS, Octopus and Ext4
// by designing a customized TensorFlow API").
//
// The pipeline reproduces what the framework layer adds on top of the
// file system: a per-sample decode/deserialise cost, batching, and a
// single-threaded import loop feeding the learner. Sources adapt each of
// the three file systems to a common interface so Fig 12 measures them
// under the identical pipeline.
package tfio

import (
	"errors"
	"fmt"

	"dlfs/internal/cluster"
	"dlfs/internal/core"
	"dlfs/internal/dataset"
	"dlfs/internal/ext4sim"
	"dlfs/internal/octopus"
	"dlfs/internal/sim"
)

// Source produces raw samples for the pipeline. Next returns the next
// sample's dataset index and bytes, or ok == false at end of epoch.
type Source interface {
	Next(p *sim.Proc) (idx int, data []byte, ok bool)
	// Name labels the source in tables.
	Name() string
}

// Costs models the framework overhead per sample.
type Costs struct {
	DecodeCPUPerByte sim.Duration // deserialise/decode cost per byte
	DecodeCPUFixed   sim.Duration // fixed per-sample framework overhead
}

// DefaultCosts approximates TF's record deserialisation: ~2 µs of fixed
// dispatch per sample; raise DecodeCPUPerByte to model image decoding.
func DefaultCosts() Costs {
	return Costs{DecodeCPUFixed: 2000}
}

// Pipeline drives a Source, paying decode cost on the client CPU and
// grouping samples into batches.
type Pipeline struct {
	src       Source
	node      *cluster.Node
	costs     Costs
	batchSize int

	samples int64
	bytes   int64
}

// NewPipeline builds a pipeline over src running on node.
func NewPipeline(src Source, node *cluster.Node, costs Costs, batchSize int) *Pipeline {
	if batchSize <= 0 {
		batchSize = 32
	}
	if costs == (Costs{}) {
		costs = DefaultCosts()
	}
	return &Pipeline{src: src, node: node, costs: costs, batchSize: batchSize}
}

// Batch is one imported mini-batch.
type Batch struct {
	Indices [][]byte // decoded sample payloads
	Idx     []int    // dataset indices
}

// NextBatch imports up to batchSize samples, paying the decode cost for
// each; ok is false at end of epoch.
func (pl *Pipeline) NextBatch(p *sim.Proc) (Batch, bool) {
	var b Batch
	for len(b.Idx) < pl.batchSize {
		idx, data, ok := pl.src.Next(p)
		if !ok {
			break
		}
		// Decode on the importing core.
		cost := pl.costs.DecodeCPUFixed + sim.Duration(int64(pl.costs.DecodeCPUPerByte)*int64(len(data)))
		pl.node.Compute(p, cost)
		b.Indices = append(b.Indices, data)
		b.Idx = append(b.Idx, idx)
		pl.samples++
		pl.bytes += int64(len(data))
	}
	return b, len(b.Idx) > 0
}

// Drain imports the whole epoch and returns the total samples imported.
func (pl *Pipeline) Drain(p *sim.Proc) int {
	total := 0
	for {
		b, ok := pl.NextBatch(p)
		if !ok {
			return total
		}
		total += len(b.Idx)
	}
}

// Stats reports samples and bytes imported.
func (pl *Pipeline) Stats() (samples, bytes int64) { return pl.samples, pl.bytes }

// ErrExhausted reports Next after the epoch ended.
var ErrExhausted = errors.New("tfio: source exhausted")

// DLFSSource adapts a DLFS epoch (dlfs_sequence/dlfs_bread).
type DLFSSource struct {
	ep  *core.Epoch
	buf []core.Item
}

// NewDLFSSource wraps an epoch.
func NewDLFSSource(ep *core.Epoch) *DLFSSource { return &DLFSSource{ep: ep} }

// Name implements Source.
func (s *DLFSSource) Name() string { return "dlfs-tf" }

// Next implements Source.
func (s *DLFSSource) Next(p *sim.Proc) (int, []byte, bool) {
	for len(s.buf) == 0 {
		items, ok := s.ep.NextBatch(p)
		if !ok {
			return 0, nil, false
		}
		s.buf = items
	}
	it := s.buf[0]
	s.buf = s.buf[1:]
	return it.Index, it.Data, true
}

// FileSource adapts a name-addressed file system (Ext4 or Octopus) with a
// fixed read order, the conventional TF file-list input.
type FileSource struct {
	name  string
	ds    *dataset.Dataset
	order []int
	pos   int
	read  func(p *sim.Proc, idx int, buf []byte) (int, error)
}

// NewExt4Source builds a source reading order from a kernel FS on node.
func NewExt4Source(fs *ext4sim.FS, node *cluster.Node, ds *dataset.Dataset, order []int) *FileSource {
	return &FileSource{
		name:  "ext4-tf",
		ds:    ds,
		order: order,
		read: func(p *sim.Proc, idx int, buf []byte) (int, error) {
			return fs.ReadFile(p, node.CPU, ds.Samples[idx].Name, buf)
		},
	}
}

// NewOctopusSource builds a source reading order through Octopus from
// clientNode.
func NewOctopusSource(fs *octopus.FS, clientNode int, ds *dataset.Dataset, order []int) *FileSource {
	return &FileSource{
		name:  "octopus-tf",
		ds:    ds,
		order: order,
		read: func(p *sim.Proc, idx int, buf []byte) (int, error) {
			return fs.ReadFile(p, clientNode, ds.Samples[idx].Name, buf)
		},
	}
}

// Name implements Source.
func (s *FileSource) Name() string { return s.name }

// Next implements Source.
func (s *FileSource) Next(p *sim.Proc) (int, []byte, bool) {
	if s.pos >= len(s.order) {
		return 0, nil, false
	}
	idx := s.order[s.pos]
	s.pos++
	buf := make([]byte, s.ds.Samples[idx].Size)
	if _, err := s.read(p, idx, buf); err != nil {
		panic(fmt.Sprintf("tfio: source read %d: %v", idx, err))
	}
	return idx, buf, true
}
