package tfio

import (
	"fmt"
	"testing"

	"dlfs/internal/cluster"
	"dlfs/internal/core"
	"dlfs/internal/dataset"
	"dlfs/internal/ext4sim"
	"dlfs/internal/sim"
	"dlfs/internal/workload"
)

func testDataset(n int) *dataset.Dataset {
	return dataset.Generate(dataset.Config{Label: "tf", Seed: 5, NumSamples: n, Dist: dataset.Fixed(2048)})
}

func TestDLFSSourceDrainsEpoch(t *testing.T) {
	e := sim.NewEngine()
	job := workload.NewJob(e, 2, 8, false)
	ds := testDataset(100)
	fss, err := workload.MountDLFS(e, job, ds, core.Config{ChunkSize: 8 << 10, CacheBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	seen := make([]int, ds.Len())
	for i := 0; i < 2; i++ {
		i := i
		e.Go(fmt.Sprintf("imp%d", i), func(p *sim.Proc) {
			src := NewDLFSSource(fss[i].Sequence(3))
			if src.Name() != "dlfs-tf" {
				t.Error("name")
			}
			pl := NewPipeline(src, fss[i].Node(), Costs{}, 16)
			for {
				b, ok := pl.NextBatch(p)
				if !ok {
					break
				}
				if len(b.Idx) > 16 {
					t.Errorf("batch %d over size", len(b.Idx))
				}
				counts[i] += len(b.Idx)
				for j, idx := range b.Idx {
					seen[idx]++
					if dataset.ChecksumBytes(b.Indices[j]) != ds.Checksum(idx) {
						t.Errorf("sample %d corrupt through pipeline", idx)
					}
				}
			}
			s, by := pl.Stats()
			if int(s) != counts[i] || by != int64(counts[i]*2048) {
				t.Errorf("stats %d/%d", s, by)
			}
		})
	}
	e.RunAll()
	if counts[0]+counts[1] != 100 {
		t.Fatalf("imported %d of 100", counts[0]+counts[1])
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("sample %d imported %d times", idx, n)
		}
	}
}

func TestExt4SourcePipeline(t *testing.T) {
	e := sim.NewEngine()
	job := workload.NewJob(e, 1, 8, false)
	ds := testDataset(40)
	fss, shards, err := workload.Ext4PerNode(e, job, ds, ext4sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Go("imp", func(p *sim.Proc) {
		src := NewExt4Source(fss[0], job.Node(0), ds, shards[0])
		pl := NewPipeline(src, job.Node(0), Costs{}, 8)
		got := pl.Drain(p)
		if got != len(shards[0]) {
			t.Errorf("imported %d of %d", got, len(shards[0]))
		}
	})
	e.RunAll()
}

func TestOctopusSourcePipeline(t *testing.T) {
	e := sim.NewEngine()
	job := workload.NewJob(e, 2, 8, false)
	ds := testDataset(30)
	fs, err := workload.BuildOctopus(job, ds)
	if err != nil {
		t.Fatal(err)
	}
	e.Go("imp", func(p *sim.Proc) {
		src := NewOctopusSource(fs, 0, ds, workload.Seq(30))
		pl := NewPipeline(src, job.Node(0), Costs{}, 10)
		if got := pl.Drain(p); got != 30 {
			t.Errorf("imported %d", got)
		}
	})
	e.RunAll()
}

func TestDecodeCostCharged(t *testing.T) {
	// With a huge per-sample decode cost the pipeline must slow down
	// proportionally: the framework layer is on the critical path.
	run := func(costs Costs) sim.Time {
		e := sim.NewEngine()
		job := workload.NewJob(e, 1, 8, false)
		ds := testDataset(50)
		fss, _ := workload.MountDLFS(e, job, ds, core.Config{ChunkSize: 8 << 10, CacheBytes: 4 << 20})
		e.Go("imp", func(p *sim.Proc) {
			pl := NewPipeline(NewDLFSSource(fss[0].Sequence(1)), fss[0].Node(), costs, 16)
			pl.Drain(p)
		})
		return e.RunAll()
	}
	cheap := run(Costs{DecodeCPUFixed: 1})
	costly := run(Costs{DecodeCPUFixed: 1_000_000}) // 1 ms/sample
	if costly < cheap+sim.Time(45)*1_000_000 {
		t.Fatalf("decode cost not charged: cheap=%v costly=%v", cheap, costly)
	}
}

func TestPipelineDefaults(t *testing.T) {
	e := sim.NewEngine()
	job := cluster.NewJob(e, 1, cluster.DefaultNodeSpec())
	pl := NewPipeline(nil, job.Node(0), Costs{}, 0)
	if pl.batchSize != 32 || pl.costs.DecodeCPUFixed != 2000 {
		t.Fatalf("defaults: %+v batch=%d", pl.costs, pl.batchSize)
	}
}
