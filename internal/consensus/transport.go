package consensus

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// Magic prefixes every Raft connection ("DLRF"), so replica traffic can
// share a listener with the coordinator's client protocol ("DLCO"): the
// accept loop peeks four bytes and routes the connection.
const Magic = 0x444C5246

// TCPTransport carries Raft RPCs over persistent TCP connections, one
// cached per peer, re-dialled on error. The server side is driven by
// the owner's accept loop handing raft-magic connections to ServeConn.
type TCPTransport struct {
	handler     func(*Message) *Message
	dialTimeout time.Duration
	callTimeout time.Duration

	mu    sync.Mutex
	conns map[string]*peerConn
}

type peerConn struct {
	mu   sync.Mutex // one RPC in flight per peer connection
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewTCPTransport builds a transport whose inbound RPCs are answered by
// handler (normally Node.HandleRPC). dialTimeout bounds connection
// setup; callTimeout bounds one whole RPC round trip (0 takes 2s/5s).
func NewTCPTransport(handler func(*Message) *Message, dialTimeout, callTimeout time.Duration) *TCPTransport {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	if callTimeout <= 0 {
		callTimeout = 5 * time.Second
	}
	return &TCPTransport{
		handler:     handler,
		dialTimeout: dialTimeout,
		callTimeout: callTimeout,
		conns:       make(map[string]*peerConn),
	}
}

// Call sends req to the replica listening at to and returns its
// response. A transport error invalidates the cached connection so the
// next call re-dials.
func (t *TCPTransport) Call(to string, req *Message) (*Message, error) {
	pc, err := t.get(to)
	if err != nil {
		return nil, err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.conn.SetDeadline(time.Now().Add(t.callTimeout)) //nolint:errcheck
	if err := pc.enc.Encode(req); err != nil {
		t.drop(to, pc)
		return nil, fmt.Errorf("consensus: send to %s: %w", to, err)
	}
	var resp Message
	if err := pc.dec.Decode(&resp); err != nil {
		t.drop(to, pc)
		return nil, fmt.Errorf("consensus: recv from %s: %w", to, err)
	}
	return &resp, nil
}

// get returns the cached connection to peer, dialling if needed.
func (t *TCPTransport) get(to string) (*peerConn, error) {
	t.mu.Lock()
	if pc := t.conns[to]; pc != nil {
		t.mu.Unlock()
		return pc, nil
	}
	t.mu.Unlock()
	conn, err := net.DialTimeout("tcp", to, t.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("consensus: dial %s: %w", to, err)
	}
	var magic [4]byte
	binary.LittleEndian.PutUint32(magic[:], Magic)
	conn.SetWriteDeadline(time.Now().Add(t.dialTimeout)) //nolint:errcheck
	if _, err := conn.Write(magic[:]); err != nil {
		conn.Close() //nolint:errcheck
		return nil, fmt.Errorf("consensus: handshake %s: %w", to, err)
	}
	pc := &peerConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	t.mu.Lock()
	if prev := t.conns[to]; prev != nil {
		// Lost the dial race; keep the established one.
		t.mu.Unlock()
		conn.Close() //nolint:errcheck
		return prev, nil
	}
	t.conns[to] = pc
	t.mu.Unlock()
	return pc, nil
}

// drop invalidates a failed cached connection.
func (t *TCPTransport) drop(to string, pc *peerConn) {
	t.mu.Lock()
	if t.conns[to] == pc {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	pc.conn.Close() //nolint:errcheck
}

// ServeConn answers RPCs on one inbound connection until it errors or
// closes. The caller has already consumed the four magic bytes.
func (t *TCPTransport) ServeConn(conn net.Conn) {
	defer conn.Close() //nolint:errcheck
	r := bufio.NewReader(conn)
	dec := gob.NewDecoder(r)
	enc := gob.NewEncoder(conn)
	for {
		var req Message
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := t.handler(&req)
		conn.SetWriteDeadline(time.Now().Add(t.callTimeout)) //nolint:errcheck
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// Close severs every cached peer connection.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	conns := t.conns
	t.conns = make(map[string]*peerConn)
	t.mu.Unlock()
	for _, pc := range conns {
		pc.conn.Close() //nolint:errcheck
	}
}
