package consensus

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// localNet is an in-memory Transport fabric with per-edge fault
// switches, so election behaviour can be tested deterministically —
// including asymmetric partitions (A can send to B while B's messages
// to A vanish), the scenario the chaos proxy's one-directional
// blackhole mode reproduces over real sockets.
type localNet struct {
	mu      sync.Mutex
	nodes   map[string]*Node
	dropped map[[2]string]bool // [from,to] edges that blackhole
}

func newLocalNet() *localNet {
	return &localNet{nodes: make(map[string]*Node), dropped: make(map[[2]string]bool)}
}

func (ln *localNet) add(n *Node) {
	ln.mu.Lock()
	ln.nodes[n.ID()] = n
	ln.mu.Unlock()
}

// dropDirection blackholes messages sent from -> to (one direction).
func (ln *localNet) dropDirection(from, to string, v bool) {
	ln.mu.Lock()
	ln.dropped[[2]string{from, to}] = v
	ln.mu.Unlock()
}

// isolate drops every edge touching id, in the given directions.
func (ln *localNet) isolate(id string, outbound, inbound bool) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	for other := range ln.nodes {
		if other == id {
			continue
		}
		if outbound {
			ln.dropped[[2]string{id, other}] = true
		}
		if inbound {
			ln.dropped[[2]string{other, id}] = true
		}
	}
}

func (ln *localNet) heal() {
	ln.mu.Lock()
	ln.dropped = make(map[[2]string]bool)
	ln.mu.Unlock()
}

// transport returns the Transport view for one node.
func (ln *localNet) transport(id string) Transport {
	return &localTransport{net: ln, id: id}
}

type localTransport struct {
	net *localNet
	id  string
}

func (t *localTransport) Call(to string, req *Message) (*Message, error) {
	t.net.mu.Lock()
	// The request travels id->to; the response travels to->id. Either
	// direction being blackholed loses the RPC.
	if t.net.dropped[[2]string{t.id, to}] || t.net.dropped[[2]string{to, t.id}] {
		t.net.mu.Unlock()
		return nil, fmt.Errorf("localnet: %s -> %s partitioned", t.id, to)
	}
	n := t.net.nodes[to]
	t.net.mu.Unlock()
	if n == nil {
		return nil, fmt.Errorf("localnet: no node %s", to)
	}
	return n.HandleRPC(req), nil
}

// recorder is a test FSM collecting applied entries.
type recorder struct {
	mu      sync.Mutex
	applied []Entry
	cond    *sync.Cond
}

func newRecorder() *recorder {
	r := &recorder{}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *recorder) Apply(e Entry) {
	r.mu.Lock()
	r.applied = append(r.applied, e)
	r.cond.Broadcast()
	r.mu.Unlock()
}

func (r *recorder) Snapshot() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(len(r.applied)))
	return out
}

func (r *recorder) Restore([]byte) {}

// waitApplied blocks until n entries have been applied or the deadline
// passes.
func (r *recorder) waitApplied(t *testing.T, n int, d time.Duration) []Entry {
	t.Helper()
	deadline := time.Now().Add(d)
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.applied) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d of %d entries applied", len(r.applied), n)
		}
		remaining := time.Until(deadline)
		timer := time.AfterFunc(remaining, func() { r.cond.Broadcast() })
		r.cond.Wait()
		timer.Stop()
	}
	out := make([]Entry, n)
	copy(out, r.applied[:n])
	return out
}

// cluster stands up n nodes over a localNet.
type cluster struct {
	net   *localNet
	nodes []*Node
	fsms  []*recorder
}

func startCluster(t *testing.T, n int, snapThreshold int) *cluster {
	t.Helper()
	ln := newLocalNet()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node%d", i)
	}
	c := &cluster{net: ln}
	for i := 0; i < n; i++ {
		fsm := newRecorder()
		node := NewNode(Config{
			ID: ids[i], Peers: ids,
			ElectionTimeout:   60 * time.Millisecond,
			SnapshotThreshold: snapThreshold,
			Seed:              int64(i + 1),
		}, fsm, ln.transport(ids[i]))
		ln.add(node)
		c.nodes = append(c.nodes, node)
		c.fsms = append(c.fsms, fsm)
	}
	for _, node := range c.nodes {
		node.Start()
	}
	t.Cleanup(func() {
		for _, node := range c.nodes {
			node.Stop()
		}
	})
	return c
}

// waitLeader polls until exactly one node leads (among live) and a
// majority agrees on it.
func (c *cluster) waitLeader(t *testing.T, exclude map[string]bool) *Node {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		votes := make(map[string]int)
		for _, n := range c.nodes {
			if exclude[n.ID()] {
				continue
			}
			if l, _ := n.Leader(); l != "" {
				votes[l]++
			}
		}
		for id, v := range votes {
			if exclude[id] || v <= len(c.nodes)/2 {
				continue
			}
			for _, n := range c.nodes {
				if n.ID() == id {
					if st := n.Status(); st.IsLeader {
						return n
					}
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no leader elected")
	return nil
}

// propose retries until the entry lands through the current leader.
func (c *cluster) propose(t *testing.T, data []byte, exclude map[string]bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		l := c.waitLeader(t, exclude)
		if _, _, err := l.Propose(data); err == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("proposal never accepted")
}

func TestElectionAndReplication(t *testing.T) {
	c := startCluster(t, 3, 0)
	c.waitLeader(t, nil)
	for i := 0; i < 5; i++ {
		c.propose(t, []byte{byte(i)}, nil)
	}
	for i, fsm := range c.fsms {
		got := fsm.waitApplied(t, 5, 5*time.Second)
		for j, e := range got {
			if len(e.Data) != 1 || e.Data[0] != byte(j) {
				t.Fatalf("node %d applied entry %d = %v", i, j, e.Data)
			}
		}
	}
	// All replicas applied the same sequence at the same indexes.
	ref := c.fsms[0].waitApplied(t, 5, time.Second)
	for i := 1; i < 3; i++ {
		got := c.fsms[i].waitApplied(t, 5, time.Second)
		for j := range ref {
			if got[j].Index != ref[j].Index || got[j].Term != ref[j].Term {
				t.Fatalf("node %d entry %d at (%d,%d), node 0 at (%d,%d)",
					i, j, got[j].Index, got[j].Term, ref[j].Index, ref[j].Term)
			}
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	c := startCluster(t, 3, 0)
	first := c.waitLeader(t, nil)
	c.propose(t, []byte("a"), nil)
	for _, fsm := range c.fsms {
		fsm.waitApplied(t, 1, 5*time.Second)
	}
	_, termBefore := first.Leader()

	// Kill the leader outright: survivors must elect a replacement and
	// keep committing.
	first.Stop()
	c.net.isolate(first.ID(), true, true)
	dead := map[string]bool{first.ID(): true}
	second := c.waitLeader(t, dead)
	if second.ID() == first.ID() {
		t.Fatal("dead leader re-elected")
	}
	if _, term := second.Leader(); term <= termBefore {
		t.Fatalf("new term %d not past old term %d", term, termBefore)
	}
	c.propose(t, []byte("b"), dead)
	for i, fsm := range c.fsms {
		if c.nodes[i].ID() == first.ID() {
			continue
		}
		got := fsm.waitApplied(t, 2, 5*time.Second)
		if string(got[1].Data) != "b" {
			t.Fatalf("survivor %d applied %q after failover", i, got[1].Data)
		}
	}
}

// TestAsymmetricPartitionElectsNewLeader is the one-directional fault
// the chaos proxy's partition mode models: the leader can still send
// but hears nothing back. Its AppendEntries responses are lost, no
// majority can commit through it, and the followers — whose own
// timeouts keep firing unanswered... — actually: followers still
// receive heartbeats, so the interesting direction is the opposite.
// Here the leader's *outbound* direction is cut: followers lose
// contact, elect a replacement among themselves, and the old leader
// abdicates the moment the partition heals and a higher term reaches
// it.
func TestAsymmetricPartitionElectsNewLeader(t *testing.T) {
	c := startCluster(t, 3, 0)
	old := c.waitLeader(t, nil)
	c.propose(t, []byte("pre"), nil)
	for _, fsm := range c.fsms {
		fsm.waitApplied(t, 1, 5*time.Second)
	}

	// Cut only the old leader's outbound edges: it can receive, not send.
	c.net.isolate(old.ID(), true, false)
	dead := map[string]bool{old.ID(): true}
	replacement := c.waitLeader(t, dead)
	if replacement.ID() == old.ID() {
		t.Fatal("partitioned leader still counted as leader by a majority")
	}
	// The majority side commits without the old leader.
	c.propose(t, []byte("post"), dead)
	for i, fsm := range c.fsms {
		if c.nodes[i].ID() == old.ID() {
			continue
		}
		fsm.waitApplied(t, 2, 5*time.Second)
	}

	// Heal: the old leader hears the higher term and steps down; the log
	// converges everywhere, exactly once.
	c.net.heal()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := old.Status(); !st.IsLeader {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale leader never stepped down after heal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, fsm := range c.fsms {
		got := fsm.waitApplied(t, 2, 5*time.Second)
		if string(got[0].Data) != "pre" || string(got[1].Data) != "post" {
			t.Fatalf("node %d applied %q,%q", i, got[0].Data, got[1].Data)
		}
	}
}

func TestSnapshotCompactionCatchesUpSlowFollower(t *testing.T) {
	c := startCluster(t, 3, 8)
	c.waitLeader(t, nil)

	// Partition node2 entirely, then commit enough entries to force the
	// leader past the snapshot threshold.
	straggler := c.nodes[2]
	c.net.isolate(straggler.ID(), true, true)
	dead := map[string]bool{straggler.ID(): true}
	const total = 40
	for i := 0; i < total; i++ {
		c.propose(t, []byte{byte(i)}, dead)
	}
	for i := 0; i < 2; i++ {
		c.fsms[i].waitApplied(t, total, 10*time.Second)
	}
	leader := c.waitLeader(t, dead)
	if st := leader.Status(); st.Applied < total {
		t.Fatalf("leader applied %d of %d", st.Applied, total)
	}
	// The leader must have compacted: 40 entries >> threshold 8.
	leader.mu.Lock()
	snapIndex := leader.snapIndex
	leader.mu.Unlock()
	if snapIndex == 0 {
		t.Fatal("leader never compacted its log")
	}

	// Heal: the straggler is behind the compaction point and must be
	// caught up via InstallSnapshot + entries. Its FSM missed the
	// compacted prefix (Restore is a no-op in this test FSM), but its
	// log position must converge with the leader's.
	c.net.heal()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := straggler.Status()
		lst := leader.Status()
		if st.Applied >= lst.CommitIndex && lst.CommitIndex > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("straggler applied=%d, leader commit=%d: never converged", st.Applied, lst.CommitIndex)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestProposeOnFollowerRedirects(t *testing.T) {
	c := startCluster(t, 3, 0)
	leader := c.waitLeader(t, nil)
	for _, n := range c.nodes {
		if n.ID() == leader.ID() {
			continue
		}
		// A follower learns the leader from the first heartbeat after the
		// election; poll briefly so the hint has had a chance to arrive.
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, _, err := n.Propose([]byte("x"))
			var nle *NotLeaderError
			if !errorsAs(err, &nle) {
				t.Fatalf("follower Propose error = %v, want *NotLeaderError", err)
			}
			if nle.Leader == leader.ID() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("redirect hint %q, want %q", nle.Leader, leader.ID())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// errorsAs avoids importing errors twice across files in this package.
func errorsAs(err error, target any) bool {
	if err == nil {
		return false
	}
	if nle, ok := target.(**NotLeaderError); ok {
		for e := err; e != nil; {
			if v, ok := e.(*NotLeaderError); ok {
				*nle = v
				return true
			}
			u, ok := e.(interface{ Unwrap() error })
			if !ok {
				return false
			}
			e = u.Unwrap()
		}
	}
	return false
}

// TestTCPTransportRoundTrip exercises the real wire path: two nodes'
// transports over real listeners with the magic handshake.
func TestTCPTransportRoundTrip(t *testing.T) {
	handler := func(req *Message) *Message {
		return &Message{Kind: MsgAppResp, Term: req.Term + 1, From: "b", Success: true}
	}
	tr := NewTCPTransport(handler, time.Second, 2*time.Second)
	defer tr.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() //nolint:errcheck
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			var magic [4]byte
			if _, err := conn.Read(magic[:]); err != nil || binary.LittleEndian.Uint32(magic[:]) != Magic {
				conn.Close() //nolint:errcheck
				continue
			}
			go tr.ServeConn(conn)
		}
	}()

	client := NewTCPTransport(nil, time.Second, 2*time.Second)
	defer client.Close()
	for i := 0; i < 3; i++ {
		resp, err := client.Call(ln.Addr().String(), &Message{Kind: MsgApp, Term: uint64(i), From: "a"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Term != uint64(i+1) || !resp.Success {
			t.Fatalf("resp = %+v", resp)
		}
	}
}
