// Package consensus is a minimal pure-Go Raft implementation — the
// replicated log underneath the DLFS control plane. It exists so the
// mount coordinator can run as a replica set: the assembled directory
// blobs, the placement epoch, and the job membership view are proposed
// as log entries, replicated to a majority, and applied to a
// deterministic state machine on every replica, so any replica can take
// over as coordinator when the leader dies.
//
// The implementation covers the Raft core needed here and nothing more:
//
//   - leader election with randomized timeouts (term, votes, majority);
//   - log replication with per-follower nextIndex/matchIndex, conflict
//     back-off, and commit on majority match in the leader's term;
//   - snapshot/compaction: once the in-memory log passes a threshold the
//     FSM is snapshotted, the applied prefix truncated, and lagging
//     followers caught up with InstallSnapshot.
//
// State is in-memory only. A replica that restarts rejoins with an
// empty log and is caught up by the leader via snapshot + entries; the
// availability model is "a majority of replicas stays up", which is the
// same model the directory itself already assumes (it is rebuilt from
// rank memory on a full-cluster restart). Cluster membership of the
// replica set is static (the -coord-peers list); the *job's* elastic
// rank membership is ordinary replicated state, not Raft membership.
package consensus

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dlfs/internal/metrics"
)

// Errors.
var (
	// ErrNotLeader reports a proposal sent to a non-leader replica. The
	// concrete error is a *NotLeaderError carrying the leader hint.
	ErrNotLeader = errors.New("consensus: not the leader")
	// ErrStopped reports use of a stopped node.
	ErrStopped = errors.New("consensus: node stopped")
)

// NotLeaderError redirects a proposal to the current leader, when known.
type NotLeaderError struct {
	Leader string // leader ID ("" when unknown, e.g. mid-election)
}

func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return "consensus: not the leader (no leader known)"
	}
	return fmt.Sprintf("consensus: not the leader (leader is %s)", e.Leader)
}

// Unwrap lets errors.Is(err, ErrNotLeader) match.
func (e *NotLeaderError) Unwrap() error { return ErrNotLeader }

// Entry is one replicated log record. Index and Term place it in the
// log; Data is the opaque FSM command (nil for the no-op a new leader
// appends to commit its term).
type Entry struct {
	Index uint64
	Term  uint64
	Data  []byte
}

// FSM is the deterministic state machine the log drives. Apply is
// called exactly once per committed entry, in index order, from a
// single goroutine. Snapshot captures the full state at the moment of
// the call (same goroutine as Apply); Restore replaces the state with a
// snapshot (only before any Apply, or on a follower installing a leader
// snapshot).
type FSM interface {
	Apply(e Entry)
	Snapshot() []byte
	Restore(data []byte)
}

// Message kinds.
const (
	MsgVote uint8 = iota + 1
	MsgVoteResp
	MsgApp
	MsgAppResp
	MsgSnap
	MsgSnapResp
)

// Message is the single RPC envelope for all Raft traffic; Kind selects
// which fields are meaningful. One struct keeps the gob stream simple.
type Message struct {
	Kind uint8
	Term uint64
	From string

	// MsgVote.
	LastLogIndex uint64
	LastLogTerm  uint64
	// MsgVoteResp.
	Granted bool

	// MsgApp.
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []Entry
	LeaderCommit uint64
	// MsgAppResp.
	Success    bool
	MatchIndex uint64 // on success: highest replicated index
	Conflict   uint64 // on failure: next index the leader should try

	// MsgSnap.
	SnapIndex uint64
	SnapTerm  uint64
	SnapData  []byte
}

// Transport carries RPCs between replicas. Call sends req to the peer
// with the given ID and returns its response (synchronous, at-most-once;
// errors are treated as a lost message). Implementations must be safe
// for concurrent Calls.
type Transport interface {
	Call(to string, req *Message) (*Message, error)
}

// Roles.
const (
	roleFollower = iota
	roleCandidate
	roleLeader
)

// Config tunes a Node. Zero values take defaults.
type Config struct {
	ID    string   // this replica's identity (its address)
	Peers []string // all replicas, including self

	ElectionTimeout   time.Duration // base election timeout, randomized to [1x, 2x) (default 300ms)
	HeartbeatInterval time.Duration // leader heartbeat period (default ElectionTimeout/5)
	SnapshotThreshold int           // log entries retained before compaction (default 1024)
	Seed              int64         // election-jitter seed (0 takes a per-ID default)

	Metrics *metrics.Consensus // optional counters (nil allocates private ones)
	Logf    func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 300 * time.Millisecond
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.ElectionTimeout / 5
	}
	if c.SnapshotThreshold <= 0 {
		c.SnapshotThreshold = 1024
	}
	if c.Seed == 0 {
		for _, b := range []byte(c.ID) {
			c.Seed = c.Seed*131 + int64(b)
		}
		c.Seed++
	}
	if c.Metrics == nil {
		c.Metrics = &metrics.Consensus{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Node is one Raft replica.
type Node struct {
	cfg  Config
	fsm  FSM
	tr   Transport
	mets *metrics.Consensus

	mu       sync.Mutex
	role     int
	term     uint64
	votedFor string
	leader   string // last known leader ID ("" when unknown)

	// Log: entries snapIndex+1 .. snapIndex+len(log). snapIndex/snapTerm
	// describe the compacted prefix (0/0 before any snapshot).
	log       []Entry
	snapIndex uint64
	snapTerm  uint64
	snapData  []byte

	commitIndex uint64
	applied     uint64

	// Leader volatile state.
	nextIndex  map[string]uint64
	matchIndex map[string]uint64

	rng          *rand.Rand
	lastContact  time.Time // last valid leader contact or vote grant
	applyCond    *sync.Cond
	stopped      bool
	wg           sync.WaitGroup
	replTrigger  map[string]chan struct{} // per-peer replication kick
	stopCh       chan struct{}
	leaderChange chan struct{} // closed and replaced on every leader/term change
}

// NewNode builds a replica over fsm and tr. Call Start to run it.
func NewNode(cfg Config, fsm FSM, tr Transport) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:          cfg,
		fsm:          fsm,
		tr:           tr,
		mets:         cfg.Metrics,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		nextIndex:    make(map[string]uint64),
		matchIndex:   make(map[string]uint64),
		replTrigger:  make(map[string]chan struct{}),
		stopCh:       make(chan struct{}),
		leaderChange: make(chan struct{}),
	}
	n.applyCond = sync.NewCond(&n.mu)
	for _, p := range cfg.Peers {
		if p != cfg.ID {
			n.replTrigger[p] = make(chan struct{}, 1)
		}
	}
	return n
}

// ID reports this replica's identity.
func (n *Node) ID() string { return n.cfg.ID }

// Start launches the ticker, apply, and per-peer replication loops.
func (n *Node) Start() {
	n.mu.Lock()
	n.lastContact = time.Now()
	n.mu.Unlock()
	n.wg.Add(2)
	go n.tickLoop()
	go n.applyLoop()
	for p, ch := range n.replTrigger {
		n.wg.Add(1)
		go n.replicateLoop(p, ch)
	}
}

// Stop halts the node. In-flight RPCs finish; no further state changes.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	close(n.stopCh)
	n.applyCond.Broadcast()
	n.mu.Unlock()
	n.wg.Wait()
}

// Status is a point-in-time role/progress view.
type Status struct {
	ID          string
	Term        uint64
	Leader      string
	IsLeader    bool
	CommitIndex uint64
	Applied     uint64
	LastIndex   uint64
}

// Status reports the node's current term, role and log progress.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Status{
		ID:          n.cfg.ID,
		Term:        n.term,
		Leader:      n.leader,
		IsLeader:    n.role == roleLeader,
		CommitIndex: n.commitIndex,
		Applied:     n.applied,
		LastIndex:   n.lastIndexLocked(),
	}
}

// Leader returns the last known leader ID ("" when unknown) and term.
func (n *Node) Leader() (string, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader, n.term
}

// LeaderChanged returns a channel closed on the next leader or term
// change, for callers that wait out elections instead of polling.
func (n *Node) LeaderChanged() <-chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderChange
}

// Propose appends data to the replicated log if this node leads. It
// returns the entry's index and term; commitment is observed through
// the FSM's Apply. Non-leaders fail with a *NotLeaderError hint.
func (n *Node) Propose(data []byte) (index, term uint64, err error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return 0, 0, ErrStopped
	}
	if n.role != roleLeader {
		leader := n.leader
		n.mu.Unlock()
		return 0, 0, &NotLeaderError{Leader: leader}
	}
	e := Entry{Index: n.lastIndexLocked() + 1, Term: n.term, Data: data}
	n.log = append(n.log, e)
	n.mets.LastIndex.Store(int64(e.Index))
	n.mets.Proposals.Add(1)
	n.matchIndex[n.cfg.ID] = e.Index
	n.advanceCommitLocked()
	n.mu.Unlock()
	n.kickReplication()
	return e.Index, e.Term, nil
}

// lastIndexLocked is the index of the newest log entry (or snapshot).
func (n *Node) lastIndexLocked() uint64 {
	return n.snapIndex + uint64(len(n.log))
}

// termAtLocked returns the term of the entry at index (0 for index 0).
// ok is false when the index is compacted away or beyond the log.
func (n *Node) termAtLocked(index uint64) (uint64, bool) {
	if index == n.snapIndex {
		return n.snapTerm, true
	}
	if index < n.snapIndex || index > n.lastIndexLocked() {
		return 0, false
	}
	return n.log[index-n.snapIndex-1].Term, true
}

// entriesFromLocked copies entries from index (exclusive of compaction).
func (n *Node) entriesFromLocked(index uint64) []Entry {
	if index > n.lastIndexLocked() {
		return nil
	}
	src := n.log[index-n.snapIndex-1:]
	out := make([]Entry, len(src))
	copy(out, src)
	return out
}

// becomeFollowerLocked adopts term and drops to follower.
func (n *Node) becomeFollowerLocked(term uint64, leader string) {
	if n.role == roleLeader {
		n.mets.LeaderLost.Add(1)
		n.mets.IsLeader.Store(0)
	}
	changed := term != n.term || leader != n.leader
	if term != n.term {
		n.votedFor = ""
	}
	n.role = roleFollower
	n.term = term
	n.leader = leader
	n.mets.Term.Store(int64(term))
	if changed {
		close(n.leaderChange)
		n.leaderChange = make(chan struct{})
	}
}

// tickLoop drives election timeouts (follower/candidate) and heartbeats
// (leader).
func (n *Node) tickLoop() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			return
		}
		role := n.role
		// One randomized timeout per wait cycle: the same value decides
		// both how long to sleep and whether contact lapsed.
		timeout := n.cfg.ElectionTimeout + time.Duration(n.rng.Int63n(int64(n.cfg.ElectionTimeout)))
		var wait time.Duration
		if role == roleLeader {
			wait = n.cfg.HeartbeatInterval
		} else {
			wait = timeout - time.Since(n.lastContact)
		}
		n.mu.Unlock()
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-n.stopCh:
				return
			}
		}
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			return
		}
		if n.role == roleLeader {
			n.mu.Unlock()
			n.kickReplication()
			continue
		}
		// Election timeout: stand for election unless the leader (or a
		// candidate we voted for) made contact while we slept.
		if time.Since(n.lastContact) < timeout {
			n.mu.Unlock()
			continue
		}
		n.startElectionLocked() // unlocks
	}
}

// startElectionLocked runs one candidacy. Called with the lock held;
// returns with it released.
func (n *Node) startElectionLocked() {
	n.role = roleCandidate
	n.term++
	n.votedFor = n.cfg.ID
	n.leader = ""
	n.lastContact = time.Now()
	n.mets.Term.Store(int64(n.term))
	n.mets.Elections.Add(1)
	close(n.leaderChange)
	n.leaderChange = make(chan struct{})
	term := n.term
	lastIndex := n.lastIndexLocked()
	lastTerm, _ := n.termAtLocked(lastIndex)
	peers := make([]string, 0, len(n.cfg.Peers)-1)
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			peers = append(peers, p)
		}
	}
	n.cfg.Logf("consensus %s: standing for election, term %d", n.cfg.ID, term)
	n.mu.Unlock()

	req := &Message{Kind: MsgVote, Term: term, From: n.cfg.ID, LastLogIndex: lastIndex, LastLogTerm: lastTerm}
	votes := make(chan bool, len(peers))
	for _, p := range peers {
		go func(p string) {
			resp, err := n.tr.Call(p, req)
			if err != nil || resp == nil {
				votes <- false
				return
			}
			n.mu.Lock()
			if resp.Term > n.term {
				n.becomeFollowerLocked(resp.Term, "")
				n.lastContact = time.Now()
			}
			n.mu.Unlock()
			votes <- resp.Kind == MsgVoteResp && resp.Term == term && resp.Granted
		}(p)
	}

	granted := 1 // own vote
	needed := len(n.cfg.Peers)/2 + 1
	for i := 0; i < len(peers); i++ {
		var ok bool
		select {
		case ok = <-votes:
		case <-n.stopCh:
			return
		}
		if !ok {
			continue
		}
		granted++
		if granted < needed {
			continue
		}
		n.mu.Lock()
		if n.role != roleCandidate || n.term != term {
			n.mu.Unlock()
			return
		}
		n.becomeLeaderLocked()
		n.mu.Unlock()
		n.kickReplication()
		return
	}
}

// becomeLeaderLocked installs leader state and appends the term no-op
// (committing it commits everything earlier — the Raft §5.4.2 guard).
func (n *Node) becomeLeaderLocked() {
	n.role = roleLeader
	n.leader = n.cfg.ID
	n.mets.LeaderWins.Add(1)
	n.mets.IsLeader.Store(1)
	close(n.leaderChange)
	n.leaderChange = make(chan struct{})
	next := n.lastIndexLocked() + 1
	for _, p := range n.cfg.Peers {
		n.nextIndex[p] = next
		n.matchIndex[p] = 0
	}
	noop := Entry{Index: next, Term: n.term}
	n.log = append(n.log, noop)
	n.mets.LastIndex.Store(int64(noop.Index))
	n.matchIndex[n.cfg.ID] = noop.Index
	n.cfg.Logf("consensus %s: elected leader, term %d", n.cfg.ID, n.term)
}

// kickReplication nudges every peer's replication loop.
func (n *Node) kickReplication() {
	for _, ch := range n.replTrigger {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// replicateLoop serializes AppendEntries/InstallSnapshot traffic to one
// peer: one RPC in flight, re-kicked by proposals and heartbeat ticks.
func (n *Node) replicateLoop(peer string, kick <-chan struct{}) {
	defer n.wg.Done()
	for {
		select {
		case <-kick:
		case <-n.stopCh:
			return
		}
		n.replicateOnce(peer)
	}
}

// replicateOnce sends one AppendEntries (or InstallSnapshot) to peer
// and processes the response.
func (n *Node) replicateOnce(peer string) {
	n.mu.Lock()
	if n.stopped || n.role != roleLeader {
		n.mu.Unlock()
		return
	}
	term := n.term
	next := n.nextIndex[peer]
	if next == 0 {
		next = 1
	}
	if next <= n.snapIndex {
		// The peer is behind the compaction point: ship the snapshot.
		req := &Message{
			Kind: MsgSnap, Term: term, From: n.cfg.ID,
			SnapIndex: n.snapIndex, SnapTerm: n.snapTerm, SnapData: n.snapData,
		}
		snapIndex := n.snapIndex
		n.mu.Unlock()
		resp, err := n.tr.Call(peer, req)
		if err != nil || resp == nil {
			return
		}
		n.mu.Lock()
		if resp.Term > n.term {
			n.becomeFollowerLocked(resp.Term, "")
			n.lastContact = time.Now()
		} else if n.role == roleLeader && n.term == term {
			n.nextIndex[peer] = snapIndex + 1
			if n.matchIndex[peer] < snapIndex {
				n.matchIndex[peer] = snapIndex
			}
		}
		more := n.role == roleLeader && n.nextIndex[peer] <= n.lastIndexLocked()
		n.mu.Unlock()
		if more {
			n.kickPeer(peer)
		}
		return
	}
	prev := next - 1
	prevTerm, ok := n.termAtLocked(prev)
	if !ok {
		// Compacted while deciding; retry as snapshot on the next kick.
		n.mu.Unlock()
		n.kickPeer(peer)
		return
	}
	req := &Message{
		Kind: MsgApp, Term: term, From: n.cfg.ID,
		PrevLogIndex: prev, PrevLogTerm: prevTerm,
		Entries: n.entriesFromLocked(next), LeaderCommit: n.commitIndex,
	}
	n.mu.Unlock()

	resp, err := n.tr.Call(peer, req)
	if err != nil || resp == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if resp.Term > n.term {
		n.becomeFollowerLocked(resp.Term, "")
		n.lastContact = time.Now()
		return
	}
	if n.role != roleLeader || n.term != term {
		return
	}
	if resp.Success {
		if resp.MatchIndex > n.matchIndex[peer] {
			n.matchIndex[peer] = resp.MatchIndex
		}
		n.nextIndex[peer] = n.matchIndex[peer] + 1
		n.advanceCommitLocked()
		return
	}
	// Log mismatch: back off to the follower's conflict hint.
	ni := resp.Conflict
	if ni == 0 || ni >= next {
		ni = next - 1
	}
	if ni < 1 {
		ni = 1
	}
	n.nextIndex[peer] = ni
	n.kickPeer(peer) // non-blocking send; safe under the lock
}

func (n *Node) kickPeer(peer string) {
	if ch, ok := n.replTrigger[peer]; ok {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// advanceCommitLocked commits the highest index replicated on a
// majority whose entry is from the current term.
func (n *Node) advanceCommitLocked() {
	matches := make([]uint64, 0, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		matches = append(matches, n.matchIndex[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	candidate := matches[len(n.cfg.Peers)/2]
	if candidate <= n.commitIndex {
		return
	}
	if t, ok := n.termAtLocked(candidate); !ok || t != n.term {
		return
	}
	n.commitIndex = candidate
	n.mets.CommitIndex.Store(int64(candidate))
	n.applyCond.Broadcast()
}

// applyLoop feeds committed entries to the FSM in order and takes
// snapshots when the log passes the compaction threshold.
func (n *Node) applyLoop() {
	defer n.wg.Done()
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		for !n.stopped && n.applied >= n.commitIndex {
			n.applyCond.Wait()
		}
		if n.stopped {
			return
		}
		for n.applied < n.commitIndex {
			idx := n.applied + 1
			if idx <= n.snapIndex {
				// Compacted under us (snapshot install); skip forward.
				n.applied = n.snapIndex
				continue
			}
			if idx > n.lastIndexLocked() {
				break
			}
			entry := n.log[idx-n.snapIndex-1]
			n.mu.Unlock()
			if entry.Data != nil {
				n.fsm.Apply(entry)
			}
			n.mu.Lock()
			if n.applied < entry.Index {
				n.applied = entry.Index
			}
			n.mets.AppliedIndex.Store(int64(n.applied))
		}
		n.maybeSnapshotLocked()
	}
}

// maybeSnapshotLocked compacts the applied prefix once the retained log
// exceeds the threshold.
func (n *Node) maybeSnapshotLocked() {
	if len(n.log) <= n.cfg.SnapshotThreshold || n.applied <= n.snapIndex {
		return
	}
	cut := n.applied
	cutTerm, ok := n.termAtLocked(cut)
	if !ok {
		return
	}
	n.mu.Unlock()
	data := n.fsm.Snapshot()
	n.mu.Lock()
	if cut <= n.snapIndex {
		return // a snapshot install moved past us meanwhile
	}
	n.log = append([]Entry(nil), n.log[cut-n.snapIndex:]...)
	n.snapIndex = cut
	n.snapTerm = cutTerm
	n.snapData = data
	n.mets.Snapshots.Add(1)
	n.cfg.Logf("consensus %s: compacted log through %d (%d entries retained)", n.cfg.ID, cut, len(n.log))
}

// HandleRPC processes one inbound RPC and returns the response. It is
// the Transport server side's entry point.
func (n *Node) HandleRPC(req *Message) *Message {
	switch req.Kind {
	case MsgVote:
		return n.handleVote(req)
	case MsgApp:
		return n.handleAppend(req)
	case MsgSnap:
		return n.handleSnapshot(req)
	default:
		return &Message{Kind: req.Kind, From: n.cfg.ID}
	}
}

func (n *Node) handleVote(req *Message) *Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := &Message{Kind: MsgVoteResp, From: n.cfg.ID}
	if req.Term > n.term {
		n.becomeFollowerLocked(req.Term, "")
	}
	resp.Term = n.term
	if req.Term < n.term {
		return resp
	}
	// Grant iff we have not voted for someone else this term and the
	// candidate's log is at least as up to date as ours.
	lastIndex := n.lastIndexLocked()
	lastTerm, _ := n.termAtLocked(lastIndex)
	upToDate := req.LastLogTerm > lastTerm ||
		(req.LastLogTerm == lastTerm && req.LastLogIndex >= lastIndex)
	if (n.votedFor == "" || n.votedFor == req.From) && upToDate {
		n.votedFor = req.From
		n.lastContact = time.Now()
		resp.Granted = true
	}
	return resp
}

func (n *Node) handleAppend(req *Message) *Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := &Message{Kind: MsgAppResp, From: n.cfg.ID}
	if req.Term > n.term || (req.Term == n.term && n.role != roleFollower) {
		n.becomeFollowerLocked(req.Term, req.From)
	}
	resp.Term = n.term
	if req.Term < n.term {
		return resp
	}
	if n.leader != req.From {
		n.becomeFollowerLocked(req.Term, req.From)
	}
	n.lastContact = time.Now()

	// Consistency check at PrevLogIndex. A prev index inside our
	// compacted prefix is committed state and matches by definition; the
	// append loop below skips the covered entries.
	if req.PrevLogIndex > n.snapIndex {
		t, ok := n.termAtLocked(req.PrevLogIndex)
		if !ok {
			resp.Conflict = n.lastIndexLocked() + 1
			return resp
		} else if t != req.PrevLogTerm {
			// Back off past the whole conflicting term.
			ci := req.PrevLogIndex
			for ci > n.snapIndex+1 {
				ct, _ := n.termAtLocked(ci - 1)
				if ct != t {
					break
				}
				ci--
			}
			resp.Conflict = ci
			return resp
		}
	}
	// Append, truncating on the first conflict.
	for _, e := range req.Entries {
		if e.Index <= n.snapIndex {
			continue
		}
		if t, ok := n.termAtLocked(e.Index); ok {
			if t == e.Term {
				continue
			}
			n.log = n.log[:e.Index-n.snapIndex-1]
		}
		n.log = append(n.log, e)
	}
	n.mets.LastIndex.Store(int64(n.lastIndexLocked()))
	if req.LeaderCommit > n.commitIndex {
		ci := req.LeaderCommit
		if li := n.lastIndexLocked(); ci > li {
			ci = li
		}
		n.commitIndex = ci
		n.mets.CommitIndex.Store(int64(ci))
		n.applyCond.Broadcast()
	}
	resp.Success = true
	resp.MatchIndex = req.PrevLogIndex + uint64(len(req.Entries))
	if resp.MatchIndex > n.lastIndexLocked() {
		resp.MatchIndex = n.lastIndexLocked()
	}
	return resp
}

func (n *Node) handleSnapshot(req *Message) *Message {
	n.mu.Lock()
	resp := &Message{Kind: MsgSnapResp, From: n.cfg.ID}
	if req.Term > n.term || (req.Term == n.term && n.role != roleFollower) {
		n.becomeFollowerLocked(req.Term, req.From)
	}
	resp.Term = n.term
	if req.Term < n.term {
		n.mu.Unlock()
		return resp
	}
	n.lastContact = time.Now()
	if req.SnapIndex <= n.snapIndex || req.SnapIndex <= n.applied {
		n.mu.Unlock()
		return resp // stale snapshot; nothing to do
	}
	// Install: replace state through SnapIndex, keep any newer suffix
	// that matches, else clear.
	if t, ok := n.termAtLocked(req.SnapIndex); ok && t == req.SnapTerm {
		n.log = append([]Entry(nil), n.log[req.SnapIndex-n.snapIndex:]...)
	} else {
		n.log = nil
	}
	n.snapIndex = req.SnapIndex
	n.snapTerm = req.SnapTerm
	n.snapData = req.SnapData
	n.applied = req.SnapIndex
	if n.commitIndex < req.SnapIndex {
		n.commitIndex = req.SnapIndex
	}
	n.mets.SnapshotsRx.Add(1)
	n.mets.AppliedIndex.Store(int64(n.applied))
	n.mets.CommitIndex.Store(int64(n.commitIndex))
	n.mets.LastIndex.Store(int64(n.lastIndexLocked()))
	n.mu.Unlock()
	n.fsm.Restore(req.SnapData)
	return resp
}
