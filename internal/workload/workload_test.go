package workload

import (
	"testing"

	"dlfs/internal/core"
	"dlfs/internal/dataset"
	"dlfs/internal/ext4sim"
	"dlfs/internal/sim"
)

func ds(n, size int) *dataset.Dataset {
	return dataset.Generate(dataset.Config{Label: "w", Seed: 17, NumSamples: n, Dist: dataset.Fixed(size)})
}

func TestRandomOrder(t *testing.T) {
	pool := []int{10, 20, 30}
	o := RandomOrder(1, pool, 7)
	if len(o) != 7 {
		t.Fatalf("len %d", len(o))
	}
	for _, v := range o {
		if v != 10 && v != 20 && v != 30 {
			t.Fatalf("value %d not from pool", v)
		}
	}
	// First len(pool) draws must be distinct (a permutation prefix).
	seen := map[int]bool{}
	for _, v := range o[:3] {
		if seen[v] {
			t.Fatal("duplicate within first pass")
		}
		seen[v] = true
	}
	again := RandomOrder(1, pool, 7)
	for i := range o {
		if o[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestSeq(t *testing.T) {
	s := Seq(4)
	if len(s) != 4 || s[0] != 0 || s[3] != 3 {
		t.Fatalf("Seq = %v", s)
	}
}

func TestResultRates(t *testing.T) {
	r := Result{Samples: 100, Bytes: 1000, Elapsed: sim.Duration(2e9)}
	if r.PerSec() != 50 || r.BytesPerSec() != 500 {
		t.Fatalf("rates %v %v", r.PerSec(), r.BytesPerSec())
	}
	z := Result{Samples: 5}
	if z.PerSec() != 0 || z.BytesPerSec() != 0 {
		t.Fatal("zero elapsed")
	}
}

func TestExt4FixtureAndRun(t *testing.T) {
	e := sim.NewEngine()
	job := NewJob(e, 2, 4, false)
	d := ds(60, 2048)
	fss, shards, err := Ext4PerNode(e, job, d, ext4sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if total != 60 {
		t.Fatalf("shards cover %d", total)
	}
	res := RunExt4(e, job, d, fss, shards, 1, 20, 1)
	if res.Samples != 40 || res.Elapsed <= 0 || res.PerSec() <= 0 {
		t.Fatalf("ext4 result %+v", res)
	}
}

func TestOctopusFixtureAndRun(t *testing.T) {
	e := sim.NewEngine()
	job := NewJob(e, 2, 4, false)
	d := ds(40, 1024)
	fs, err := BuildOctopus(job, d)
	if err != nil {
		t.Fatal(err)
	}
	res := RunOctopus(e, job, d, fs, 15, 2)
	if res.Samples != 30 || res.Elapsed <= 0 {
		t.Fatalf("octopus result %+v", res)
	}
}

func TestDLFSFixtureAndRuns(t *testing.T) {
	e := sim.NewEngine()
	job := NewJob(e, 2, 4, false)
	d := ds(80, 1024)
	fss, err := MountDLFS(e, job, d, core.Config{ChunkSize: 8 << 10, CacheBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	base := RunDLFSBase(e, job, d, fss, 20, 3)
	if base.Samples != 40 || base.Elapsed <= 0 {
		t.Fatalf("base result %+v", base)
	}
	ep := RunDLFSEpoch(e, fss, 4)
	if ep.Samples != 80 || ep.Elapsed <= 0 {
		t.Fatalf("epoch result %+v", ep)
	}
	if ep.Bytes != 80*1024 {
		t.Fatalf("epoch bytes %d", ep.Bytes)
	}
}

func TestDLFSBeatsExt4OnSmallSamples(t *testing.T) {
	// The headline comparison must hold in-model before the figures
	// formalise it: batched DLFS ≫ single-threaded Ext4 at 512 B.
	e := sim.NewEngine()
	job := NewJob(e, 1, 20, true)
	d := ds(600, 512)
	fss, err := MountDLFS(e, job, d, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dlfs := RunDLFSEpoch(e, fss, 5)

	e2 := sim.NewEngine()
	job2 := NewJob(e2, 1, 20, true)
	efs, shards, err := Ext4PerNode(e2, job2, d, ext4sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ext4 := RunExt4(e2, job2, d, efs, shards, 1, 600, 5)

	if dlfs.PerSec() < 3*ext4.PerSec() {
		t.Fatalf("DLFS %.0f/s not ≫ Ext4 %.0f/s at 512B", dlfs.PerSec(), ext4.PerSec())
	}
}

func TestOptaneJobUsesOptane(t *testing.T) {
	e := sim.NewEngine()
	job := NewJob(e, 1, 0, true)
	if job.Node(0).Device.Spec().Capacity != 480<<30 {
		t.Fatal("optane spec not applied")
	}
	if job.Node(0).CPU.Capacity() != 20 {
		t.Fatal("default cores not applied")
	}
}
