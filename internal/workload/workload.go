// Package workload provides the shared fixtures and measurement loops the
// figure reproductions are built from: populated file-system instances of
// all three systems over a simulated job, seeded random-read orders, and
// aggregate-throughput runners that time a read phase under the virtual
// clock.
package workload

import (
	"fmt"
	"math/rand"

	"dlfs/internal/cluster"
	"dlfs/internal/core"
	"dlfs/internal/dataset"
	"dlfs/internal/directory"
	"dlfs/internal/ext4sim"
	"dlfs/internal/nvme"
	"dlfs/internal/octopus"
	"dlfs/internal/sim"
)

// Result is an aggregate throughput measurement under virtual time.
type Result struct {
	Samples int
	Bytes   int64
	Elapsed sim.Duration
}

// PerSec returns samples per second.
func (r Result) PerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Samples) / (float64(r.Elapsed) / 1e9)
}

// BytesPerSec returns bytes per second.
func (r Result) BytesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / (float64(r.Elapsed) / 1e9)
}

// NewJob builds an n-node job where every node has cores CPUs and an
// emulated NVMe device (the paper's multi-node setup), or — with optane
// true — the single real Optane device testbed.
func NewJob(e *sim.Engine, n, cores int, optane bool) *cluster.Job {
	spec := cluster.DefaultNodeSpec()
	if cores > 0 {
		spec.Cores = cores
	}
	if optane {
		d := nvme.OptaneSpec()
		spec.Device = &d
	}
	return cluster.NewJob(e, n, spec)
}

// MountDLFS mounts DLFS on every node of the job and returns the per-node
// instances.
func MountDLFS(e *sim.Engine, job *cluster.Job, ds *dataset.Dataset, cfg core.Config) ([]*core.FS, error) {
	fss := make([]*core.FS, job.N())
	errs := make([]error, job.N())
	for i := 0; i < job.N(); i++ {
		i := i
		e.Go(fmt.Sprintf("mount%d", i), func(p *sim.Proc) {
			fss[i], errs[i] = core.Mount(p, job, i, ds, cfg)
		})
	}
	e.RunAll()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mount node %d: %w", i, err)
		}
	}
	return fss, nil
}

// Ext4PerNode builds one kernel file system per node, each populated with
// the node's hash-shard of the dataset — the paper's Ext4 baseline, where
// every training node reads its local share. It returns the per-node FS
// and the per-node list of dataset indices stored there.
func Ext4PerNode(e *sim.Engine, job *cluster.Job, ds *dataset.Dataset, cfg ext4sim.Config) ([]*ext4sim.FS, [][]int, error) {
	n := job.N()
	fss := make([]*ext4sim.FS, n)
	shards := make([][]int, n)
	for i := 0; i < n; i++ {
		if job.Node(i).Device == nil {
			return nil, nil, fmt.Errorf("workload: node %d has no device", i)
		}
		fss[i] = ext4sim.New(e, job.Node(i).Device, cfg)
	}
	for idx := 0; idx < ds.Len(); idx++ {
		nid := int(directory.HomeNode(ds.Samples[idx].Key(), n))
		if err := fss[nid].CreateFile(ds.Samples[idx].Name, ds.Content(idx)); err != nil {
			return nil, nil, err
		}
		shards[nid] = append(shards[nid], idx)
	}
	return fss, shards, nil
}

// BuildOctopus populates an Octopus instance spanning the job.
func BuildOctopus(job *cluster.Job, ds *dataset.Dataset) (*octopus.FS, error) {
	fs := octopus.New(job, octopus.Costs{})
	for idx := 0; idx < ds.Len(); idx++ {
		if err := fs.Put(ds.Samples[idx].Name, ds.Content(idx)); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// RandomOrder returns count indices drawn from pool in seeded random order
// (with wraparound when count exceeds the pool).
func RandomOrder(seed int64, pool []int, count int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, count)
	perm := rng.Perm(len(pool))
	for i := 0; i < count; i++ {
		out[i] = pool[perm[i%len(perm)]]
	}
	return out
}

// Seq returns [0, n).
func Seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// timePhase runs one reader function per client under a common start
// barrier and returns the span from the shared start to the last finish.
func timePhase(e *sim.Engine, clients int, run func(p *sim.Proc, client int)) sim.Duration {
	var start, end sim.Time
	started := 0
	startSig := sim.NewSignal(e)
	for c := 0; c < clients; c++ {
		c := c
		e.Go(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
			started++
			if started < clients {
				startSig.Wait(p)
			} else {
				startSig.Broadcast()
				p.Yield()
			}
			if start == 0 {
				start = p.Now()
			}
			run(p, c)
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	e.RunAll()
	return sim.Duration(end - start)
}

// RunExt4 measures random full-sample reads over the per-node kernel file
// systems: every node runs `threads` reader threads, each reading its
// share of perNode samples from the node's local shard. Caches are
// dropped first so reads are cold, as the paper's trials are.
func RunExt4(e *sim.Engine, job *cluster.Job, ds *dataset.Dataset, fss []*ext4sim.FS, shards [][]int, threads, perNode int, seed int64) Result {
	n := job.N()
	for _, fs := range fss {
		fs.DropCaches()
	}
	var bytes int64
	// One permutation per node, partitioned across its threads, so no
	// sample is read twice (a duplicate would hit the page cache and
	// flatter the kernel baseline).
	perThread := perNode / threads
	orders := make([][]int, n)
	for node := 0; node < n; node++ {
		orders[node] = RandomOrder(seed+int64(node), shards[node], perThread*threads)
	}
	elapsed := timePhase(e, n*threads, func(p *sim.Proc, client int) {
		node := client / threads
		th := client % threads
		fs := fss[node]
		order := orders[node][th*perThread : (th+1)*perThread]
		cpu := job.Node(node).CPU
		buf := make([]byte, maxSize(ds))
		for _, idx := range order {
			sz := ds.Samples[idx].Size
			if _, err := fs.ReadFile(p, cpu, ds.Samples[idx].Name, buf[:sz]); err != nil {
				panic(fmt.Sprintf("ext4 read %d on node %d thread %d: %v", idx, node, th, err))
			}
			bytes += int64(sz)
		}
	})
	return Result{Samples: n * threads * perThread, Bytes: bytes, Elapsed: elapsed}
}

// RunOctopus measures random full-sample reads through Octopus: one
// reader thread per node, each reading perNode samples from anywhere in
// the dataset (Octopus is a distributed namespace).
func RunOctopus(e *sim.Engine, job *cluster.Job, ds *dataset.Dataset, fs *octopus.FS, perNode int, seed int64) Result {
	n := job.N()
	var bytes int64
	// One global permutation, partitioned across clients: each sample is
	// read by at most one client per epoch-equivalent.
	global := RandomOrder(seed, Seq(ds.Len()), min(perNode*n, ds.Len()))
	elapsed := timePhase(e, n, func(p *sim.Proc, client int) {
		lo := len(global) * client / n
		hi := len(global) * (client + 1) / n
		buf := make([]byte, maxSize(ds))
		for _, idx := range global[lo:hi] {
			sz := ds.Samples[idx].Size
			if _, err := fs.ReadFile(p, client, ds.Samples[idx].Name, buf[:sz]); err != nil {
				panic(fmt.Sprintf("octopus read %d from node %d: %v", idx, client, err))
			}
			bytes += int64(sz)
		}
	})
	return Result{Samples: len(global), Bytes: bytes, Elapsed: elapsed}
}

// RunDLFSBase measures the synchronous dlfs_read path (DLFS-Base): one
// reader per instance issuing cold per-sample reads in random order over
// the whole namespace.
func RunDLFSBase(e *sim.Engine, job *cluster.Job, ds *dataset.Dataset, fss []*core.FS, perNode int, seed int64) Result {
	var bytes int64
	global := RandomOrder(seed, Seq(ds.Len()), min(perNode*len(fss), ds.Len()))
	elapsed := timePhase(e, len(fss), func(p *sim.Proc, client int) {
		fs := fss[client]
		lo := len(global) * client / len(fss)
		hi := len(global) * (client + 1) / len(fss)
		buf := make([]byte, maxSize(ds))
		for _, idx := range global[lo:hi] {
			sz := ds.Samples[idx].Size
			if _, err := fs.ReadSample(p, idx, buf[:sz]); err != nil {
				panic(fmt.Sprintf("dlfs-base read %d: %v", idx, err))
			}
			bytes += int64(sz)
		}
	})
	return Result{Samples: len(global), Bytes: bytes, Elapsed: elapsed}
}

// RunDLFSEpoch measures dlfs_sequence + dlfs_bread over one full epoch on
// every instance: the batched DLFS configuration.
func RunDLFSEpoch(e *sim.Engine, fss []*core.FS, seed int64) Result {
	var samples int
	var bytes int64
	elapsed := timePhase(e, len(fss), func(p *sim.Proc, client int) {
		ep := fss[client].Sequence(seed)
		for {
			items, ok := ep.NextBatch(p)
			if !ok {
				break
			}
			samples += len(items)
			for _, it := range items {
				bytes += int64(len(it.Data))
			}
		}
	})
	return Result{Samples: samples, Bytes: bytes, Elapsed: elapsed}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxSize(ds *dataset.Dataset) int {
	m := 0
	for _, s := range ds.Samples {
		if s.Size > m {
			m = s.Size
		}
	}
	return m
}
