package obs

import (
	"io"
	"strconv"

	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
)

// TargetCollector renders one nvmetcp.Target as dlfs_server_* series:
// the serving counters, the RPQ/SCQ engine counters, per-tenant
// dlfs_server_tenant_* accounting (tenant-labelled; idle tenants are
// omitted), and — when the target runs with Config.StageHistograms —
// the qwait/service/flush latency histograms. target labels every
// series so one scrape can aggregate several stores.
func TargetCollector(target string, tgt *nvmetcp.Target) func(io.Writer) {
	lbl := []Label{{Name: "target", Value: target}}
	return func(w io.Writer) {
		cmds, bytes := tgt.Served()
		WriteCounter(w, "dlfs_server_commands_total", "Commands completed by the target.", cmds, lbl...)
		WriteCounter(w, "dlfs_server_payload_bytes_total", "Payload bytes moved by the target.", bytes, lbl...)
		accepted, malformed, aborted := tgt.ConnStats()
		WriteCounter(w, "dlfs_server_conns_accepted_total", "Connections accepted.", accepted, lbl...)
		WriteCounter(w, "dlfs_server_conns_malformed_total", "Connections dropped on a malformed frame.", malformed, lbl...)
		WriteCounter(w, "dlfs_server_completions_aborted_total", "Completions dropped because their connection died.", aborted, lbl...)
		reads, writes, vecReads, vecSegs := tgt.OpStats()
		WriteCounter(w, "dlfs_server_reads_total", "Single-segment read commands served.", reads, lbl...)
		WriteCounter(w, "dlfs_server_writes_total", "Write commands served.", writes, lbl...)
		WriteCounter(w, "dlfs_server_vec_reads_total", "Vectored read commands served.", vecReads, lbl...)
		WriteCounter(w, "dlfs_server_vec_segments_total", "Segments carried by vectored reads.", vecSegs, lbl...)
		WriteServerSnapshot(w, tgt.ServerStats(), lbl...)
		WriteCounter(w, "dlfs_server_tenant_rejects_total", "Commands refused for a malformed or unprovisioned tenant id.", tgt.TenantRejects(), lbl...)
		for _, ts := range tgt.TenantStats() {
			tl := append([]Label{{Name: "tenant", Value: strconv.Itoa(ts.ID)}}, lbl...)
			WriteCounter(w, "dlfs_server_tenant_commands_total", "Commands completed per tenant.", ts.Cmds, tl...)
			WriteCounter(w, "dlfs_server_tenant_bytes_total", "Payload bytes moved per tenant.", ts.Bytes, tl...)
			WriteCounter(w, "dlfs_server_tenant_throttled_total", "Commands rejected by the tenant's byte/IOPS quota.", ts.Throttled, tl...)
			WriteGauge(w, "dlfs_server_tenant_queue_depth", "Commands waiting in the tenant's scheduler queue.", float64(ts.Queued), tl...)
			WriteGauge(w, "dlfs_server_tenant_qwait_seconds_total", "Cumulative tenant-queue residency.", float64(ts.Server.QueueWaitNanos)/1e9, tl...)
			WriteGauge(w, "dlfs_server_tenant_service_seconds_total", "Cumulative command execution time per tenant.", float64(ts.Server.ServiceNanos)/1e9, tl...)
			if ts.Server.Stages != nil {
				WriteHistogram(w, "dlfs_server_tenant_qwait_seconds", "Per-command tenant-queue residency.", ts.Server.Stages.QueueWait, tl...)
				WriteHistogram(w, "dlfs_server_tenant_service_seconds", "Per-command execution time per tenant.", ts.Server.Stages.Service, tl...)
			}
		}
	}
}

// WriteServerSnapshot renders a metrics.ServerSnapshot: engine counters
// always, per-stage histograms when the snapshot carries them.
func WriteServerSnapshot(w io.Writer, s metrics.ServerSnapshot, labels ...Label) {
	WriteCounter(w, "dlfs_server_flushes_total", "Completion writev calls issued.", s.Flushes, labels...)
	WriteCounter(w, "dlfs_server_flushed_cmds_total", "Completions carried by writevs.", s.FlushedCmds, labels...)
	WriteCounter(w, "dlfs_server_zero_copy_bytes_total", "Read payload served as store views.", s.ZeroCopyBytes, labels...)
	WriteCounter(w, "dlfs_server_staged_bytes_total", "Read payload copied through the pool.", s.StagedBytes, labels...)
	WriteCounter(w, "dlfs_server_restaged_total", "Views invalidated by a write epoch change.", s.Restaged, labels...)
	WriteCounter(w, "dlfs_server_sample_cmds_total", "opReadSamples offload commands served.", s.SampleCmds, labels...)
	WriteCounter(w, "dlfs_server_assembled_samples_total", "Records assembled near-data for offload commands.", s.AssembledSamples, labels...)
	WriteCounter(w, "dlfs_server_assembled_bytes_total", "Post-transform record bytes returned by offload commands.", s.AssembledBytes, labels...)
	WriteGauge(w, "dlfs_server_transform_seconds_total", "Cumulative server-side transform time.", float64(s.TransformNanos)/1e9, labels...)
	WriteCounter(w, "dlfs_server_write_bytes_total", "Write payload bytes landed in the store.", s.WriteBytes, labels...)
	WriteCounter(w, "dlfs_server_write_vec_cmds_total", "Gathered write commands served.", s.VecWriteCmds, labels...)
	WriteCounter(w, "dlfs_server_write_vec_segments_total", "Extents carried by gathered writes.", s.VecWriteSegs, labels...)
	WriteCounter(w, "dlfs_server_write_adopted_extents_total", "Extents landed zero-copy by buffer adoption.", s.AdoptedExtents, labels...)
	WriteCounter(w, "dlfs_server_write_flushes_total", "Durability barriers served.", s.FlushCmds, labels...)
	WriteGauge(w, "dlfs_server_write_flush_wait_seconds_total", "Cumulative time barriers waited for prior writes.", float64(s.FlushWaitNanos)/1e9, labels...)
	WriteGauge(w, "dlfs_server_qwait_seconds_total", "Cumulative RPQ residency.", float64(s.QueueWaitNanos)/1e9, labels...)
	WriteGauge(w, "dlfs_server_service_seconds_total", "Cumulative command execution time.", float64(s.ServiceNanos)/1e9, labels...)
	WriteGauge(w, "dlfs_server_flush_seconds_total", "Cumulative completion flush time.", float64(s.FlushNanos)/1e9, labels...)
	if s.Stages != nil {
		WriteHistogram(w, "dlfs_server_qwait_seconds", "Per-command RPQ residency.", s.Stages.QueueWait, labels...)
		WriteHistogram(w, "dlfs_server_service_seconds", "Per-command execution time.", s.Stages.Service, labels...)
		WriteHistogram(w, "dlfs_server_flush_seconds", "Per-writev completion flush time.", s.Stages.Flush, labels...)
		WriteHistogram(w, "dlfs_server_write_seconds", "Per-write-command store landing time.", s.Stages.Write, labels...)
	}
}

// ConsensusCollector renders one coordinator replica's Raft state as
// dlfs_raft_* series. replica labels every series so one scrape can
// cover a whole replica set; snap is called per scrape so the gauges
// (term, leadership, log indexes) track the live node.
func ConsensusCollector(replica string, snap func() metrics.ConsensusSnapshot) func(io.Writer) {
	lbl := []Label{{Name: "replica", Value: replica}}
	return func(w io.Writer) {
		s := snap()
		leading := 0.0
		if s.IsLeader {
			leading = 1
		}
		WriteGauge(w, "dlfs_raft_term", "Current Raft term.", float64(s.Term), lbl...)
		WriteGauge(w, "dlfs_raft_is_leader", "1 while this replica leads, else 0.", leading, lbl...)
		WriteCounter(w, "dlfs_raft_elections_total", "Elections this replica started.", s.Elections, lbl...)
		WriteCounter(w, "dlfs_raft_leader_wins_total", "Elections this replica won.", s.LeaderWins, lbl...)
		WriteCounter(w, "dlfs_raft_leader_losses_total", "Times this replica stepped down from leading.", s.LeaderLost, lbl...)
		WriteGauge(w, "dlfs_raft_last_index", "Highest log index appended.", float64(s.LastIndex), lbl...)
		WriteGauge(w, "dlfs_raft_commit_index", "Highest committed log index.", float64(s.CommitIndex), lbl...)
		WriteGauge(w, "dlfs_raft_applied_index", "Highest log index applied to the FSM.", float64(s.AppliedIndex), lbl...)
		WriteGauge(w, "dlfs_raft_commit_lag", "Committed entries not yet applied.", float64(s.CommitLag), lbl...)
		WriteCounter(w, "dlfs_raft_proposals_total", "Commands proposed through this replica.", s.Proposals, lbl...)
		WriteCounter(w, "dlfs_raft_snapshots_total", "Snapshot compactions taken.", s.Snapshots, lbl...)
		WriteCounter(w, "dlfs_raft_snapshots_installed_total", "Snapshots installed from a leader.", s.SnapshotsRx, lbl...)
	}
}

// PipelineCollector renders client pipeline counters (and stage
// histograms when enabled) as dlfs_client_* series. snap is called per
// scrape so the series track the live pipeline.
func PipelineCollector(client string, snap func() metrics.PipelineSnapshot) func(io.Writer) {
	lbl := []Label{{Name: "client", Value: client}}
	return func(w io.Writer) {
		s := snap()
		WriteCounter(w, "dlfs_client_wire_reads_total", "Read commands put on the wire.", s.WireReads, lbl...)
		WriteCounter(w, "dlfs_client_wire_segments_total", "Chunk segments carried by wire reads.", s.WireSegments, lbl...)
		WriteCounter(w, "dlfs_client_wire_bytes_total", "Payload bytes fetched.", s.WireBytes, lbl...)
		WriteCounter(w, "dlfs_client_coalesced_units_total", "Plan units merged into a preceding wire read.", s.CoalescedUnits, lbl...)
		WriteCounter(w, "dlfs_client_pool_hits_total", "Sample buffers served from the pool.", s.PoolHits, lbl...)
		WriteCounter(w, "dlfs_client_pool_misses_total", "Sample buffers freshly allocated.", s.PoolMisses, lbl...)
		WriteCounter(w, "dlfs_client_cache_hits_total", "ReadSample served from the V-bit cache.", s.CacheHits, lbl...)
		WriteCounter(w, "dlfs_client_cache_misses_total", "ReadSample that went to the wire.", s.CacheMisses, lbl...)
		WriteCounter(w, "dlfs_client_cache_evictions_total", "V-bit cache CLOCK evictions.", s.CacheEvictions, lbl...)
		WriteCounter(w, "dlfs_client_prefetched_units_total", "Units fetched ahead into the cross-epoch lookahead store.", s.PrefetchedUnits, lbl...)
		WriteCounter(w, "dlfs_client_prefetched_bytes_total", "Bytes fetched ahead into the cross-epoch lookahead store.", s.PrefetchedBytes, lbl...)
		WriteCounter(w, "dlfs_client_prefetch_hit_units_total", "Epoch units served from the lookahead store instead of the wire.", s.PrefetchHitUnits, lbl...)
		WriteCounter(w, "dlfs_client_prefetch_hit_bytes_total", "Epoch bytes served from the lookahead store.", s.PrefetchHitBytes, lbl...)
		WriteCounter(w, "dlfs_client_prefetch_evictions_total", "Lookahead entries evicted before use.", s.PrefetchEvictions, lbl...)
		WriteCounter(w, "dlfs_client_peer_hits_total", "ReadSample misses served by a peer's cache.", s.PeerHits, lbl...)
		WriteCounter(w, "dlfs_client_peer_bytes_total", "Bytes served by peers.", s.PeerBytes, lbl...)
		WriteCounter(w, "dlfs_client_peer_fallbacks_total", "Peer fetches that failed over to origin.", s.PeerFallbacks, lbl...)
		WriteCounter(w, "dlfs_client_peer_served_total", "Samples this rank served to its peers.", s.PeerServed, lbl...)
		WriteCounter(w, "dlfs_client_offload_cmds_total", "opReadSamples offload commands posted.", s.OffloadCmds, lbl...)
		WriteCounter(w, "dlfs_client_offload_samples_total", "Samples assembled server-side instead of copied client-side.", s.OffloadSamples, lbl...)
		WriteCounter(w, "dlfs_client_offload_saved_bytes_total", "Chunk bytes that never crossed the wire thanks to server assembly.", s.OffloadSavedBytes, lbl...)
		WriteCounter(w, "dlfs_client_offload_downgrades_total", "Targets downgraded to opReadVec after rejecting opReadSamples.", s.OffloadDowngrades, lbl...)
		WriteCounter(w, "dlfs_client_origin_reads_total", "ReadSample misses served from the origin target.", s.OriginReads, lbl...)
		WriteCounter(w, "dlfs_client_origin_bytes_total", "Bytes pulled from origin targets by ReadSample.", s.OriginBytes, lbl...)
		WriteCounter(w, "dlfs_client_ckpt_saves_total", "Checkpoint saves completed.", s.CkptSaves, lbl...)
		WriteCounter(w, "dlfs_client_ckpt_bytes_total", "Checkpoint payload bytes shipped.", s.CkptBytes, lbl...)
		WriteCounter(w, "dlfs_client_ckpt_write_cmds_total", "Checkpoint write commands posted.", s.CkptWriteCmds, lbl...)
		WriteCounter(w, "dlfs_client_ckpt_write_segments_total", "Extents carried by checkpoint writes.", s.CkptWriteSegs, lbl...)
		WriteCounter(w, "dlfs_client_ckpt_flushes_total", "Per-target durability barriers issued by checkpoint saves.", s.CkptFlushes, lbl...)
		WriteCounter(w, "dlfs_client_ckpt_downgrades_total", "Targets downgraded to per-extent writes after rejecting opWriteVec.", s.CkptDowngrades, lbl...)
		WriteGauge(w, "dlfs_client_ckpt_seconds_total", "Cumulative wall time inside checkpoint saves.", float64(s.CkptNanos)/1e9, lbl...)
		WriteGauge(w, "dlfs_client_prep_seconds_total", "Cumulative prep stage time.", float64(s.PrepNanos)/1e9, lbl...)
		WriteGauge(w, "dlfs_client_post_seconds_total", "Cumulative post stage time.", float64(s.PostNanos)/1e9, lbl...)
		WriteGauge(w, "dlfs_client_poll_seconds_total", "Cumulative poll stage time.", float64(s.PollNanos)/1e9, lbl...)
		WriteGauge(w, "dlfs_client_copy_seconds_total", "Cumulative copy stage time.", float64(s.CopyNanos)/1e9, lbl...)
		if s.Stages != nil {
			WriteHistogram(w, "dlfs_client_prep_seconds", "Per-fetch-group prep latency.", s.Stages.Prep, lbl...)
			WriteHistogram(w, "dlfs_client_post_seconds", "Per-fetch-group post latency.", s.Stages.Post, lbl...)
			WriteHistogram(w, "dlfs_client_poll_seconds", "Per-fetch-group poll latency.", s.Stages.Poll, lbl...)
			WriteHistogram(w, "dlfs_client_copy_seconds", "Per-sample copy latency.", s.Stages.Copy, lbl...)
			WriteHistogram(w, "dlfs_client_read_seconds", "Whole synchronous ReadSample latency.", s.Stages.Read, lbl...)
			WriteHistogram(w, "dlfs_client_ckpt_write_seconds", "Per-checkpoint-write-command post-to-completion latency.", s.Stages.Ckpt, lbl...)
		}
	}
}
