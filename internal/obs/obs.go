package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"dlfs/internal/trace"
)

// Handler serves the observability endpoints:
//
//	/metrics    Prometheus text exposition from every registered collector
//	/healthz    liveness: {"status":"ok","uptime_seconds":...}
//	/trace.json Chrome trace-event export of the registered wall recorder
//
// Collectors are closures writing exposition text; they run under the
// handler lock, in registration order, on every scrape.
type Handler struct {
	start time.Time

	mu         sync.Mutex
	collectors []func(io.Writer)
	trace      *trace.WallRecorder
}

// NewHandler returns an empty handler.
func NewHandler() *Handler { return &Handler{start: time.Now()} }

// Register adds a collector to the /metrics scrape.
func (h *Handler) Register(c func(io.Writer)) {
	h.mu.Lock()
	h.collectors = append(h.collectors, c)
	h.mu.Unlock()
}

// SetTrace attaches the wall recorder served at /trace.json. A nil
// recorder (the default) serves an empty event array.
func (h *Handler) SetTrace(r *trace.WallRecorder) {
	h.mu.Lock()
	h.trace = r
	h.mu.Unlock()
}

// ServeHTTP routes the three endpoints.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.mu.Lock()
		cs := make([]func(io.Writer), len(h.collectors))
		copy(cs, h.collectors)
		h.mu.Unlock()
		for _, c := range cs {
			c(w)
		}
	case "/healthz":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.3f}\n", time.Since(h.start).Seconds())
	case "/trace.json":
		w.Header().Set("Content-Type", "application/json")
		h.mu.Lock()
		rec := h.trace
		h.mu.Unlock()
		if rec == nil {
			fmt.Fprintln(w, "[]")
			return
		}
		rec.WriteChromeJSON(w) //nolint:errcheck // best-effort over HTTP
	default:
		http.NotFound(w, r)
	}
}

// Server is a bound observability HTTP server.
type Server struct {
	Addr string // the resolved listen address, e.g. "127.0.0.1:9095"
	ln   net.Listener
	srv  *http.Server
}

// Serve starts an HTTP server for the handler on addr (e.g.
// "127.0.0.1:0") and returns once the listener is bound.
func Serve(addr string, h *Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Close stops the server and its listener.
func (s *Server) Close() error { return s.srv.Close() }
