// Package obs is the observability surface of the live stack: Prometheus
// text rendering for the metrics package's counters and histograms, and
// a small HTTP server exposing /metrics, /healthz and /trace.json —
// what dlfsd serves behind -metrics-addr.
//
// The package deliberately renders the text exposition format by hand
// instead of depending on a client library: the format is a few lines of
// fmt, and the repo's no-new-dependency rule holds.
package obs

import (
	"fmt"
	"io"
	"strconv"

	"dlfs/internal/metrics"
)

// Label is one Prometheus label pair, rendered as name="value".
type Label struct {
	Name  string
	Value string
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	s := "{"
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += l.Name + `="` + l.Value + `"`
	}
	return s + "}"
}

// WriteCounter emits one counter sample with HELP/TYPE headers.
func WriteCounter(w io.Writer, name, help string, v int64, labels ...Label) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s%s %d\n",
		name, help, name, name, renderLabels(labels), v)
}

// WriteGauge emits one gauge sample with HELP/TYPE headers.
func WriteGauge(w io.Writer, name, help string, v float64, labels ...Label) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s%s %s\n",
		name, help, name, name, renderLabels(labels), formatValue(v))
}

// WriteHistogram emits a metrics.HistSnapshot in the Prometheus
// histogram convention: cumulative _bucket{le="..."} samples in seconds,
// a closing le="+Inf" bucket, then _sum and _count. Only the non-empty
// buckets are emitted — valid exposition, since le boundaries carry the
// cumulative count regardless of spacing.
func WriteHistogram(w io.Writer, name, help string, s metrics.HistSnapshot, labels ...Label) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	base := renderLabels(labels)
	var cum int64
	for _, b := range s.Counts {
		cum += b.Count
		le := formatValue(float64(metrics.HistBucketUpper(b.Index)) / 1e9)
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, le), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, base, formatValue(float64(s.Sum)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, base, s.Count)
}

// bucketLabels appends the le label to the shared label set.
func bucketLabels(labels []Label, le string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{Name: "le", Value: le})
	return renderLabels(all)
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
