package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"

	"dlfs/internal/blockdev"
	"dlfs/internal/dataset"
	"dlfs/internal/live"
	"dlfs/internal/metrics"
	"dlfs/internal/nvmetcp"
	"dlfs/internal/obs"
	"dlfs/internal/trace"
)

// series is one parsed exposition sample: metric name, sorted label
// pairs, value.
type series struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm is a minimal Prometheus text-format parser good enough to
// check our own output: it validates HELP/TYPE ordering and returns
// every sample line.
func parseProm(t *testing.T, text string) []series {
	t.Helper()
	var out []series
	typed := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: bad TYPE line %q", ln+1, line)
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value in %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		s := series{labels: map[string]string{}, value: v}
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, line)
			}
			s.name = key[:i]
			for _, pair := range strings.Split(key[i+1:len(key)-1], ",") {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					t.Fatalf("line %d: bad label %q", ln+1, pair)
				}
				val, err := strconv.Unquote(pair[eq+1:])
				if err != nil {
					t.Fatalf("line %d: bad label value %q: %v", ln+1, pair, err)
				}
				s.labels[pair[:eq]] = val
			}
		} else {
			s.name = key
		}
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(s.name, suf); b != s.name && typed[b] == "histogram" {
				base = b
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("line %d: sample %q precedes its TYPE header", ln+1, s.name)
		}
		out = append(out, s)
	}
	return out
}

// sumOf totals every sample of name whose labels are a superset of want.
func sumOf(ss []series, name string, want map[string]string) (total float64, n int) {
	for _, s := range ss {
		if s.name != name {
			continue
		}
		match := true
		for k, v := range want {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			total += s.value
			n++
		}
	}
	return total, n
}

// checkHistogram asserts the Prometheus histogram invariants for one
// metric+label set: cumulative non-decreasing buckets, a closing +Inf
// bucket equal to _count, and increasing le boundaries. Returns _count.
func checkHistogram(t *testing.T, ss []series, name string, want map[string]string) float64 {
	t.Helper()
	type bkt struct {
		le  float64
		cum float64
	}
	var buckets []bkt
	var inf, count, sum float64
	var haveInf, haveCount, haveSum bool
	for _, s := range ss {
		match := true
		for k, v := range want {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		switch s.name {
		case name + "_bucket":
			le := s.labels["le"]
			if le == "+Inf" {
				inf, haveInf = s.value, true
				continue
			}
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("%s: bad le %q", name, le)
			}
			buckets = append(buckets, bkt{le: f, cum: s.value})
		case name + "_count":
			count, haveCount = s.value, true
		case name + "_sum":
			sum, haveSum = s.value, true
		}
	}
	if !haveInf || !haveCount || !haveSum {
		t.Fatalf("%s%v: missing +Inf/_count/_sum (inf=%v count=%v sum=%v)", name, want, haveInf, haveCount, haveSum)
	}
	if !sort.SliceIsSorted(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le }) {
		t.Fatalf("%s: le boundaries not increasing", name)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].cum < buckets[i-1].cum {
			t.Fatalf("%s: bucket counts not cumulative at le=%g", name, buckets[i].le)
		}
	}
	if inf != count {
		t.Fatalf("%s: +Inf bucket %g != _count %g", name, inf, count)
	}
	if count > 0 && sum <= 0 {
		t.Fatalf("%s: %g observations but sum %g", name, count, sum)
	}
	return count
}

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestConsensusCollector scrapes the dlfs_raft_* series off a
// hand-built consensus snapshot and checks every value and the derived
// commit lag.
func TestConsensusCollector(t *testing.T) {
	var c metrics.Consensus
	c.Term.Store(4)
	c.IsLeader.Store(1)
	c.Elections.Store(2)
	c.LeaderWins.Store(1)
	c.LastIndex.Store(42)
	c.CommitIndex.Store(40)
	c.AppliedIndex.Store(39)
	c.Proposals.Store(17)
	c.Snapshots.Store(1)

	h := obs.NewHandler()
	h.Register(obs.ConsensusCollector("r0", c.Snapshot))
	srv, err := obs.Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck

	body, _ := get(t, "http://"+srv.Addr+"/metrics")
	ss := parseProm(t, body)
	lbl := map[string]string{"replica": "r0"}
	for name, want := range map[string]float64{
		"dlfs_raft_term":              4,
		"dlfs_raft_is_leader":         1,
		"dlfs_raft_elections_total":   2,
		"dlfs_raft_leader_wins_total": 1,
		"dlfs_raft_last_index":        42,
		"dlfs_raft_commit_index":      40,
		"dlfs_raft_applied_index":     39,
		"dlfs_raft_commit_lag":        1,
		"dlfs_raft_proposals_total":   17,
		"dlfs_raft_snapshots_total":   1,
	} {
		if got, n := sumOf(ss, name, lbl); n != 1 || got != want {
			t.Fatalf("%s: scraped %g (%d series), want %g", name, got, n, want)
		}
	}
}

// TestEndpointEndToEnd is the full loop the ISSUE asks for: targets and
// a live mount run with stage histograms on, an epoch flows through, and
// the scraped /metrics text must agree with the in-process snapshots.
func TestEndpointEndToEnd(t *testing.T) {
	const nTargets = 2
	targets := make([]*nvmetcp.Target, nTargets)
	addrs := make([]string, nTargets)
	for i := range targets {
		tgt := nvmetcp.NewTargetConfig(blockdev.New(128<<20), nvmetcp.Config{StageHistograms: true})
		addr, err := tgt.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tgt.Close() }) //nolint:errcheck
		targets[i], addrs[i] = tgt, addr
	}

	ds := dataset.Generate(dataset.Config{Label: "obs", Seed: 7, NumSamples: 120, Dist: dataset.Fixed(1800)})
	rec := trace.NewWall(1 << 16)
	fs, err := live.Mount(addrs, ds, live.Config{
		ChunkSize:       16 << 10,
		StageHistograms: true,
		Trace:           rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	ep, err := fs.Sequence(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := fs.ReadSample(i); err != nil {
			t.Fatal(err)
		}
	}

	h := obs.NewHandler()
	for i, tgt := range targets {
		h.Register(obs.TargetCollector(fmt.Sprintf("t%d", i), tgt))
	}
	h.Register(obs.PipelineCollector("live", func() metrics.PipelineSnapshot { return fs.Stats().Pipeline }))
	h.SetTrace(rec)
	srv, err := obs.Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck

	// Everything is quiesced, so the in-process snapshot taken here must
	// match the scrape exactly.
	pipe := fs.Stats().Pipeline
	if pipe.Stages == nil {
		t.Fatal("StageHistograms on but snapshot carries no stage histograms")
	}
	var srvSnaps []metrics.ServerSnapshot
	for _, tgt := range targets {
		srvSnaps = append(srvSnaps, tgt.ServerStats())
	}

	body, ctype := get(t, "http://"+srv.Addr+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ctype)
	}
	ss := parseProm(t, body)

	// Client counters must match the snapshot.
	clientLbl := map[string]string{"client": "live"}
	if got, n := sumOf(ss, "dlfs_client_wire_bytes_total", clientLbl); n != 1 || int64(got) != pipe.WireBytes {
		t.Fatalf("wire bytes: scraped %g (%d series), snapshot %d", got, n, pipe.WireBytes)
	}
	if got, _ := sumOf(ss, "dlfs_client_wire_reads_total", clientLbl); int64(got) != pipe.WireReads {
		t.Fatalf("wire reads: scraped %g, snapshot %d", got, pipe.WireReads)
	}
	if got, _ := sumOf(ss, "dlfs_client_cache_hits_total", clientLbl); int64(got) != pipe.CacheHits {
		t.Fatalf("cache hits: scraped %g, snapshot %d", got, pipe.CacheHits)
	}
	// The hit/peer/origin breakdown: the ReadSample misses above went to
	// origin, and the prefetch/peer counters are exported (zero here —
	// neither feature is on for this mount).
	if got, n := sumOf(ss, "dlfs_client_origin_reads_total", clientLbl); n != 1 || int64(got) != pipe.OriginReads || got == 0 {
		t.Fatalf("origin reads: scraped %g (%d series), snapshot %d", got, n, pipe.OriginReads)
	}
	if got, _ := sumOf(ss, "dlfs_client_origin_bytes_total", clientLbl); int64(got) != pipe.OriginBytes {
		t.Fatalf("origin bytes: scraped %g, snapshot %d", got, pipe.OriginBytes)
	}
	for _, name := range []string{
		"dlfs_client_prefetched_units_total", "dlfs_client_prefetch_hit_units_total",
		"dlfs_client_peer_hits_total", "dlfs_client_peer_fallbacks_total", "dlfs_client_peer_served_total",
	} {
		if got, n := sumOf(ss, name, clientLbl); n != 1 || got != 0 {
			t.Fatalf("%s: scraped %g (%d series), want an exported zero", name, got, n)
		}
	}

	// All four client stage histograms (plus whole-read) are present,
	// populated, and internally consistent.
	for stage, snap := range map[string]metrics.HistSnapshot{
		"prep": pipe.Stages.Prep, "post": pipe.Stages.Post,
		"poll": pipe.Stages.Poll, "copy": pipe.Stages.Copy,
		"read": pipe.Stages.Read,
	} {
		count := checkHistogram(t, ss, "dlfs_client_"+stage+"_seconds", clientLbl)
		if int64(count) != snap.Count {
			t.Fatalf("client %s histogram: scraped count %g, snapshot %d", stage, count, snap.Count)
		}
		if stage != "read" && count == 0 {
			t.Fatalf("client %s histogram empty after an epoch", stage)
		}
	}
	if pipe.Stages.Read.Count == 0 {
		t.Fatal("read histogram empty after ReadSample calls")
	}

	// Server side: per-target command counters match, and the qwait and
	// service histograms saw every command.
	var wantCmds int64
	for i, snap := range srvSnaps {
		lbl := map[string]string{"target": fmt.Sprintf("t%d", i)}
		cmds, _ := targets[i].Served()
		wantCmds += cmds
		if got, _ := sumOf(ss, "dlfs_server_commands_total", lbl); int64(got) != cmds {
			t.Fatalf("target %d commands: scraped %g, want %d", i, got, cmds)
		}
		if snap.Stages == nil {
			t.Fatalf("target %d: StageHistograms on but no snapshot stages", i)
		}
		for stage, hs := range map[string]metrics.HistSnapshot{
			"qwait": snap.Stages.QueueWait, "service": snap.Stages.Service,
		} {
			count := checkHistogram(t, ss, "dlfs_server_"+stage+"_seconds", lbl)
			if int64(count) != hs.Count {
				t.Fatalf("target %d %s: scraped count %g, snapshot %d", i, stage, count, hs.Count)
			}
			if count == 0 {
				t.Fatalf("target %d %s histogram empty after traffic", i, stage)
			}
		}
		checkHistogram(t, ss, "dlfs_server_flush_seconds", lbl)
	}
	if wantCmds < pipe.WireReads {
		t.Fatalf("targets served %d commands but client posted %d wire reads", wantCmds, pipe.WireReads)
	}

	// /healthz.
	hbody, hct := get(t, "http://"+srv.Addr+"/healthz")
	if !strings.HasPrefix(hct, "application/json") {
		t.Fatalf("healthz content type %q", hct)
	}
	var health struct {
		Status string  `json:"status"`
		Uptime float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(hbody), &health); err != nil {
		t.Fatalf("healthz not JSON: %v (%q)", err, hbody)
	}
	if health.Status != "ok" || health.Uptime < 0 {
		t.Fatalf("healthz %+v", health)
	}

	// /trace.json: a valid Chrome trace with the epoch's events.
	tbody, _ := get(t, "http://"+srv.Addr+"/trace.json")
	var events []map[string]any
	if err := json.Unmarshal([]byte(tbody), &events); err != nil {
		t.Fatalf("trace.json not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace.json empty after a traced epoch")
	}

	// Unknown paths 404.
	resp, err := http.Get("http://" + srv.Addr + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %s", resp.Status)
	}
}

// TestTraceEndpointNilRecorder covers the no-trace default.
func TestTraceEndpointNilRecorder(t *testing.T) {
	srv, err := obs.Serve("127.0.0.1:0", obs.NewHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck
	body, _ := get(t, "http://"+srv.Addr+"/trace.json")
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("expected no events, got %d", len(events))
	}
}
