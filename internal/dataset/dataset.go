// Package dataset generates and describes the synthetic training datasets
// the benchmarks read. The paper measures a "dummy dataset with random
// values as the sample content" for all throughput figures and uses the
// ImageNet and IMDB size distributions for Fig 1; both are reproduced here.
//
// Every sample has deterministic pseudo-random content derived from the
// dataset seed and the sample index, so any reader — DLFS through its SPDK
// path, the Ext4 model through the kernel path, a remote client through the
// TCP target — can verify end-to-end that the bytes it got are the bytes
// the generator produced, without storing a golden copy.
package dataset

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"sort"

	"dlfs/internal/sample"
)

// SizeDist generates sample sizes. Implementations must be deterministic
// for a given source.
type SizeDist interface {
	// SampleSize returns the size in bytes of the next sample.
	SampleSize(rng *rand.Rand) int
	// Name identifies the distribution in tables.
	Name() string
}

// Fixed is a distribution where every sample has the same size, as the
// paper's micro-benchmarks use (512 B .. 1 MB).
type Fixed int

// SampleSize returns the fixed size.
func (f Fixed) SampleSize(*rand.Rand) int { return int(f) }

// Name implements SizeDist.
func (f Fixed) Name() string { return fmt.Sprintf("fixed-%dB", int(f)) }

// LogNormal is a lognormal size distribution clamped to [Min, Max].
type LogNormal struct {
	Mu, Sigma float64 // of the underlying normal, size in bytes = e^N(mu, sigma)
	Min, Max  int
	Label     string
}

// SampleSize draws from the distribution.
func (l LogNormal) SampleSize(rng *rand.Rand) int {
	v := math.Exp(rng.NormFloat64()*l.Sigma + l.Mu)
	n := int(v)
	if n < l.Min {
		n = l.Min
	}
	if l.Max > 0 && n > l.Max {
		n = l.Max
	}
	return n
}

// Name implements SizeDist.
func (l LogNormal) Name() string { return l.Label }

// ImageNetDist models the ImageNet JPEG size distribution: the paper
// reports ~75% of samples below 147 KB (Fig 1). A lognormal with median
// ~100 KB and sigma 0.57 puts the 75th percentile at ~147 KB.
func ImageNetDist() LogNormal {
	return LogNormal{Mu: math.Log(100 << 10), Sigma: 0.57, Min: 2 << 10, Max: 1 << 22, Label: "imagenet"}
}

// IMDBDist models the IMDB text-sample distribution: ~75% of samples below
// 1.6 KB. Median ~1.1 KB, sigma 0.55 → p75 ≈ 1.6 KB.
func IMDBDist() LogNormal {
	return LogNormal{Mu: math.Log(1100), Sigma: 0.55, Min: 64, Max: 64 << 10, Label: "imdb"}
}

// Sample describes one training sample in a dataset manifest.
type Sample struct {
	Index int    // position in the dataset
	Name  string // file/sample name, e.g. "train/000000042"
	Size  int    // bytes
	Class int    // label, for class-attributed keys
}

// Key returns the 48-bit directory key for the sample.
func (s Sample) Key() uint64 {
	return sample.KeyOf(s.Name, fmt.Sprintf("class%d", s.Class))
}

// Dataset is a manifest of samples plus the generator parameters needed to
// materialise their contents deterministically.
type Dataset struct {
	Label      string
	Seed       int64
	NumClasses int
	Samples    []Sample

	totalBytes int64
}

// Config parameterises Generate.
type Config struct {
	Label      string
	Seed       int64
	NumSamples int
	NumClasses int // default 10
	Dist       SizeDist
}

// Generate builds a dataset manifest. Contents are not materialised here;
// use Content/FillContent per sample.
func Generate(cfg Config) *Dataset {
	if cfg.NumClasses <= 0 {
		cfg.NumClasses = 10
	}
	if cfg.Dist == nil {
		cfg.Dist = Fixed(128 << 10)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Label: cfg.Label, Seed: cfg.Seed, NumClasses: cfg.NumClasses}
	ds.Samples = make([]Sample, cfg.NumSamples)
	for i := range ds.Samples {
		size := cfg.Dist.SampleSize(rng)
		ds.Samples[i] = Sample{
			Index: i,
			Name:  fmt.Sprintf("%s/train/%08d", cfg.Label, i),
			Size:  size,
			Class: rng.Intn(cfg.NumClasses),
		}
		ds.totalBytes += int64(size)
	}
	return ds
}

// Len reports the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// TotalBytes reports the sum of all sample sizes.
func (d *Dataset) TotalBytes() int64 { return d.totalBytes }

// MeanSize reports the average sample size in bytes.
func (d *Dataset) MeanSize() float64 {
	if len(d.Samples) == 0 {
		return 0
	}
	return float64(d.totalBytes) / float64(len(d.Samples))
}

// FillContent writes the deterministic content of sample i into buf, which
// must be at least Samples[i].Size long. The content is a keyed xorshift
// stream: cheap, deterministic, and unique per (dataset seed, index).
func (d *Dataset) FillContent(i int, buf []byte) {
	s := d.Samples[i]
	if len(buf) < s.Size {
		panic("dataset: FillContent buffer too small")
	}
	fillDeterministic(d.Seed, int64(i), buf[:s.Size])
}

// Content allocates and returns the content of sample i.
func (d *Dataset) Content(i int) []byte {
	buf := make([]byte, d.Samples[i].Size)
	d.FillContent(i, buf)
	return buf
}

// Checksum returns the CRC32 (Castagnoli) of sample i's content without
// allocating the whole sample when it is large.
func (d *Dataset) Checksum(i int) uint32 {
	return crc32.Checksum(d.Content(i), castagnoli)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumBytes hashes arbitrary bytes with the same table, for verifying
// data read back through a file system.
func ChecksumBytes(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// fillDeterministic generates a reproducible byte stream for (seed, idx).
func fillDeterministic(seed, idx int64, buf []byte) {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(idx)*0xBF58476D1CE4E5B9
	if x == 0 {
		x = 0x2545F4914F6CDD1D
	}
	var word [8]byte
	for off := 0; off < len(buf); off += 8 {
		// xorshift64*
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		binary.LittleEndian.PutUint64(word[:], x*0x2545F4914F6CDD1D)
		copy(buf[off:], word[:])
	}
}

// Shard returns the sample indices assigned to node nid of n nodes under
// the block partitioning DLFS mount uses: contiguous ranges so each node
// uploads a contiguous region of the dataset to its device.
func (d *Dataset) Shard(nid, n int) []int {
	if n <= 0 || nid < 0 || nid >= n {
		return nil
	}
	total := len(d.Samples)
	lo := total * nid / n
	hi := total * (nid + 1) / n
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// SizeCDF returns (sizes, cumulative fraction) pairs at the given
// percentile probes, for regenerating Fig 1.
func (d *Dataset) SizeCDF(percentiles []float64) []CDFPoint {
	sizes := make([]int, len(d.Samples))
	for i, s := range d.Samples {
		sizes[i] = s.Size
	}
	sort.Ints(sizes)
	out := make([]CDFPoint, 0, len(percentiles))
	for _, p := range percentiles {
		if len(sizes) == 0 {
			out = append(out, CDFPoint{Percentile: p})
			continue
		}
		idx := int(p / 100 * float64(len(sizes)-1))
		out = append(out, CDFPoint{Percentile: p, SizeBytes: sizes[idx]})
	}
	return out
}

// CDFPoint is one point of a size CDF.
type CDFPoint struct {
	Percentile float64
	SizeBytes  int
}
