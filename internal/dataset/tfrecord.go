// TFRecord-style batched container. The paper notes DLFS keeps sample-level
// index entries even for batched formats ("we are able to have direct
// access to any samples in a TFRecord file", §III-B1), plus one entry for
// the batched file itself for file-oriented access. This file implements a
// minimal binary container with that property: samples are concatenated
// with per-record headers, and a Record index gives byte-exact sample
// locations for the directory.

package dataset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// recordHeaderSize is the per-record framing: u64 length + u32 crc of the
// payload (the real TFRecord uses u64 length + crc + data + crc; we keep
// one crc, enough to detect corruption in tests).
const recordHeaderSize = 12

// Record locates one sample inside a batched container.
type Record struct {
	SampleIndex int   // index into the source dataset
	Offset      int64 // byte offset of the payload inside the container
	Length      int32 // payload length
}

// Container is a built batched file: its raw bytes plus the sample index.
type Container struct {
	Name    string
	Data    []byte
	Records []Record
}

// BuildContainer packs the given samples of d into one batched file, in the
// order given. The returned container's Records point at payload bytes
// (after each record header).
func BuildContainer(d *Dataset, name string, indices []int) *Container {
	var total int
	for _, i := range indices {
		total += recordHeaderSize + d.Samples[i].Size
	}
	c := &Container{Name: name, Data: make([]byte, 0, total)}
	for _, i := range indices {
		payload := d.Content(i)
		var hdr [recordHeaderSize]byte
		binary.LittleEndian.PutUint64(hdr[0:8], uint64(len(payload)))
		binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, castagnoli))
		off := int64(len(c.Data)) + recordHeaderSize
		c.Data = append(c.Data, hdr[:]...)
		c.Data = append(c.Data, payload...)
		c.Records = append(c.Records, Record{SampleIndex: i, Offset: off, Length: int32(len(payload))})
	}
	return c
}

// ErrCorrupt reports a container integrity failure.
var ErrCorrupt = errors.New("dataset: corrupt container record")

// ReadRecord extracts and verifies the r-th record's payload.
func (c *Container) ReadRecord(r int) ([]byte, error) {
	if r < 0 || r >= len(c.Records) {
		return nil, fmt.Errorf("dataset: record %d out of range [0,%d)", r, len(c.Records))
	}
	rec := c.Records[r]
	hdrOff := rec.Offset - recordHeaderSize
	if hdrOff < 0 || rec.Offset+int64(rec.Length) > int64(len(c.Data)) {
		return nil, ErrCorrupt
	}
	length := binary.LittleEndian.Uint64(c.Data[hdrOff : hdrOff+8])
	wantCRC := binary.LittleEndian.Uint32(c.Data[hdrOff+8 : hdrOff+12])
	if length != uint64(rec.Length) {
		return nil, ErrCorrupt
	}
	payload := c.Data[rec.Offset : rec.Offset+int64(rec.Length)]
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// Scan walks the container from the front, rebuilding the record index
// without an external index — what a sequential TFRecord reader does. It
// verifies each record's checksum.
func Scan(data []byte) ([]Record, error) {
	var recs []Record
	off := int64(0)
	for off < int64(len(data)) {
		if off+recordHeaderSize > int64(len(data)) {
			return nil, ErrCorrupt
		}
		length := int64(binary.LittleEndian.Uint64(data[off : off+8]))
		wantCRC := binary.LittleEndian.Uint32(data[off+8 : off+12])
		payloadOff := off + recordHeaderSize
		if length < 0 || payloadOff+length > int64(len(data)) {
			return nil, ErrCorrupt
		}
		payload := data[payloadOff : payloadOff+length]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return nil, ErrCorrupt
		}
		recs = append(recs, Record{SampleIndex: len(recs), Offset: payloadOff, Length: int32(length)})
		off = payloadOff + length
	}
	return recs, nil
}
