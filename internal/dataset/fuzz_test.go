package dataset

import "testing"

// FuzzScan throws arbitrary bytes at the container scanner: it must never
// panic, and anything it accepts must re-scan identically.
func FuzzScan(f *testing.F) {
	d := Generate(Config{Label: "fz", Seed: 1, NumSamples: 3, Dist: Fixed(64)})
	c := BuildContainer(d, "p", []int{0, 1, 2})
	f.Add(c.Data)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Scan(data)
		if err != nil {
			return
		}
		again, err := Scan(data)
		if err != nil || len(again) != len(recs) {
			t.Fatalf("re-scan diverged: %v", err)
		}
		for i := range recs {
			if recs[i] != again[i] {
				t.Fatal("record mismatch on re-scan")
			}
		}
	})
}
