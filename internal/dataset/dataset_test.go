package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Label: "d", Seed: 42, NumSamples: 100, Dist: ImageNetDist()}
	a := Generate(cfg)
	b := Generate(cfg)
	if a.Len() != 100 || b.Len() != 100 {
		t.Fatalf("len %d %d", a.Len(), b.Len())
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
	if a.TotalBytes() != b.TotalBytes() || a.TotalBytes() <= 0 {
		t.Fatalf("total bytes %d %d", a.TotalBytes(), b.TotalBytes())
	}
}

func TestContentDeterministicAndDistinct(t *testing.T) {
	d := Generate(Config{Label: "d", Seed: 7, NumSamples: 10, Dist: Fixed(1024)})
	c1 := d.Content(3)
	c2 := d.Content(3)
	if string(c1) != string(c2) {
		t.Fatal("content not deterministic")
	}
	if string(d.Content(3)) == string(d.Content(4)) {
		t.Fatal("distinct samples have identical content")
	}
	other := Generate(Config{Label: "d", Seed: 8, NumSamples: 10, Dist: Fixed(1024)})
	if string(other.Content(3)) == string(c1) {
		t.Fatal("different seeds produced identical content")
	}
	if d.Checksum(3) != ChecksumBytes(c1) {
		t.Fatal("checksum mismatch")
	}
}

func TestFillContentTooSmallPanics(t *testing.T) {
	d := Generate(Config{Seed: 1, NumSamples: 1, Dist: Fixed(100)})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.FillContent(0, make([]byte, 10))
}

func TestFixedDist(t *testing.T) {
	d := Generate(Config{Seed: 1, NumSamples: 50, Dist: Fixed(512)})
	for _, s := range d.Samples {
		if s.Size != 512 {
			t.Fatalf("size %d", s.Size)
		}
	}
	if d.MeanSize() != 512 {
		t.Fatalf("mean %v", d.MeanSize())
	}
	if Fixed(512).Name() != "fixed-512B" {
		t.Fatalf("name %q", Fixed(512).Name())
	}
}

func TestImageNetQuantiles(t *testing.T) {
	// Paper: ~75% of ImageNet samples below 147 KB.
	d := Generate(Config{Label: "imagenet", Seed: 1, NumSamples: 20000, Dist: ImageNetDist()})
	pts := d.SizeCDF([]float64{50, 75})
	p75 := pts[1].SizeBytes
	if p75 < 110<<10 || p75 > 190<<10 {
		t.Fatalf("imagenet p75 = %d bytes, want ~147KB", p75)
	}
}

func TestIMDBQuantiles(t *testing.T) {
	// Paper: ~75% of IMDB samples below 1.6 KB.
	d := Generate(Config{Label: "imdb", Seed: 1, NumSamples: 20000, Dist: IMDBDist()})
	pts := d.SizeCDF([]float64{75})
	p75 := pts[0].SizeBytes
	if p75 < 1200 || p75 > 2100 {
		t.Fatalf("imdb p75 = %d bytes, want ~1.6KB", p75)
	}
}

func TestLogNormalClamp(t *testing.T) {
	l := LogNormal{Mu: 10, Sigma: 3, Min: 100, Max: 200, Label: "x"}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		s := l.SampleSize(rng)
		if s < 100 || s > 200 {
			t.Fatalf("size %d outside clamp", s)
		}
	}
	if l.Name() != "x" {
		t.Fatal("label")
	}
}

func TestShardPartition(t *testing.T) {
	d := Generate(Config{Seed: 2, NumSamples: 103, Dist: Fixed(10)})
	seen := map[int]int{}
	for nid := 0; nid < 7; nid++ {
		for _, i := range d.Shard(nid, 7) {
			seen[i]++
		}
	}
	if len(seen) != 103 {
		t.Fatalf("shards cover %d of 103 samples", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("sample %d in %d shards", i, n)
		}
	}
	if d.Shard(-1, 7) != nil || d.Shard(7, 7) != nil || d.Shard(0, 0) != nil {
		t.Fatal("invalid shard args should return nil")
	}
}

// Property: shards always partition the dataset for any (samples, nodes).
func TestShardPartitionProperty(t *testing.T) {
	f := func(nRaw, nodesRaw uint8) bool {
		n := int(nRaw)
		nodes := int(nodesRaw%16) + 1
		d := Generate(Config{Seed: 3, NumSamples: n, Dist: Fixed(8)})
		count := 0
		last := -1
		for nid := 0; nid < nodes; nid++ {
			for _, i := range d.Shard(nid, nodes) {
				if i != last+1 {
					return false // must be contiguous ascending
				}
				last = i
				count++
			}
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKeysMostlyUnique(t *testing.T) {
	d := Generate(Config{Label: "k", Seed: 5, NumSamples: 50000, Dist: Fixed(16)})
	keys := map[uint64]bool{}
	dups := 0
	for _, s := range d.Samples {
		k := s.Key()
		if keys[k] {
			dups++
		}
		keys[k] = true
	}
	if dups > 1 {
		t.Fatalf("%d duplicate keys in 50k samples", dups)
	}
}

func TestContainerRoundTrip(t *testing.T) {
	d := Generate(Config{Label: "c", Seed: 9, NumSamples: 20, Dist: Fixed(777)})
	idx := []int{3, 1, 4, 1, 5} // duplicates allowed: same sample packed twice
	c := BuildContainer(d, "part-0", idx)
	if len(c.Records) != len(idx) {
		t.Fatalf("records %d", len(c.Records))
	}
	for r, si := range idx {
		got, err := c.ReadRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", r, err)
		}
		if ChecksumBytes(got) != d.Checksum(si) {
			t.Fatalf("record %d content mismatch", r)
		}
	}
	if _, err := c.ReadRecord(-1); err == nil {
		t.Fatal("negative record should fail")
	}
	if _, err := c.ReadRecord(len(idx)); err == nil {
		t.Fatal("out of range record should fail")
	}
}

func TestContainerDetectsCorruption(t *testing.T) {
	d := Generate(Config{Label: "c", Seed: 9, NumSamples: 4, Dist: Fixed(256)})
	c := BuildContainer(d, "p", []int{0, 1, 2, 3})
	c.Data[c.Records[2].Offset+5] ^= 0xFF
	if _, err := c.ReadRecord(2); err != ErrCorrupt {
		t.Fatalf("corruption not detected: %v", err)
	}
	// Other records still fine.
	if _, err := c.ReadRecord(1); err != nil {
		t.Fatalf("record 1: %v", err)
	}
}

func TestScanRebuildsIndex(t *testing.T) {
	d := Generate(Config{Label: "c", Seed: 11, NumSamples: 8, Dist: IMDBDist()})
	c := BuildContainer(d, "p", []int{0, 1, 2, 3, 4, 5, 6, 7})
	recs, err := Scan(c.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("scan found %d records", len(recs))
	}
	for i, r := range recs {
		if r.Offset != c.Records[i].Offset || r.Length != c.Records[i].Length {
			t.Fatalf("record %d: scan %+v vs index %+v", i, r, c.Records[i])
		}
	}
}

func TestScanCorrupt(t *testing.T) {
	if _, err := Scan([]byte{1, 2, 3}); err != ErrCorrupt {
		t.Fatalf("short data: %v", err)
	}
	d := Generate(Config{Seed: 1, NumSamples: 2, Dist: Fixed(64)})
	c := BuildContainer(d, "p", []int{0, 1})
	c.Data[0] = 0xFF // absurd length
	if _, err := Scan(c.Data); err != ErrCorrupt {
		t.Fatalf("bad length: %v", err)
	}
}

func TestSizeCDFEmpty(t *testing.T) {
	d := Generate(Config{Seed: 1, NumSamples: 0, Dist: Fixed(64)})
	pts := d.SizeCDF([]float64{50})
	if len(pts) != 1 || pts[0].SizeBytes != 0 {
		t.Fatalf("empty CDF = %+v", pts)
	}
}
