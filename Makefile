GO ?= go

.PHONY: all vet build test race chaos check clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/nvmetcp ./internal/live ./internal/chaos

# Chaos soak: run the seeded fault-injection epochs twice to shake out
# scheduling-dependent bugs in the resilience path.
chaos:
	$(GO) test -run TestChaos -count=2 ./internal/live

check: vet build test race chaos

clean:
	$(GO) clean ./...
