GO ?= go
BENCH ?= .
BENCHCOUNT ?= 5

.PHONY: all vet build test race chaos bench bench-target check clean

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/nvmetcp ./internal/live ./internal/chaos ./internal/bufpool ./internal/blockdev

# Chaos soak: run the seeded fault-injection epochs twice to shake out
# scheduling-dependent bugs in the resilience path.
chaos:
	$(GO) test -run TestChaos -count=2 ./internal/live

# Pipeline benchmarks, benchstat-friendly: run with BENCHCOUNT repeats
# and pipe the output of two builds into `benchstat old.txt new.txt`.
#   make bench BENCH=BenchmarkLiveEpoch > new.txt
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count=$(BENCHCOUNT) \
		./internal/live ./internal/nvmetcp ./internal/bufpool

# Server engine matrix: legacy goroutine-per-command baseline vs the
# RPQ/SCQ worker pool, staged vs zero-copy, across client queue depths.
bench-target:
	$(GO) test -run '^$$' -bench BenchmarkTargetServe -benchmem -count=$(BENCHCOUNT) \
		./internal/nvmetcp

check: vet build test race chaos

clean:
	$(GO) clean ./...
