GO ?= go
BENCH ?= .
BENCHCOUNT ?= 5

.PHONY: all fmt fmt-check vet staticcheck build test race chaos chaos-failover bench bench-target bench-json bench-peers bench-offload bench-tenants bench-ckpt bench-smoke fuzz-smoke check clean

all: check

# Rewrite every file gofmt flags; CI runs fmt-check instead so an
# unformatted file fails the build rather than silently changing.
fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is not vendored; CI installs a
# pinned version, and a developer machine without the binary skips the
# target rather than failing the whole check pipeline. Checks are
# scoped in staticcheck.conf.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs the pinned version)"; fi

build:
	$(GO) build ./...

# The figure-reproduction suite is a full simulation sweep; on a small
# machine it alone can exceed go test's default 10m package timeout, so
# give the suite generous headroom.
test:
	$(GO) test -timeout 20m ./...

race:
	$(GO) test -race ./internal/nvmetcp ./internal/live ./internal/chaos ./internal/bufpool ./internal/blockdev \
		./internal/consensus ./internal/coord ./internal/peercache

# Chaos soak: run the seeded fault-injection epochs twice to shake out
# scheduling-dependent bugs in the resilience path.
chaos:
	$(GO) test -run TestChaos -count=2 ./internal/live

# Control-plane failover soak: the Raft election/replication suite, the
# replicated-coordinator collectives, and the live-path failover cases
# (leader killed mid-epoch, rank death mid-barrier, elastic depart with
# mid-epoch reshard), repeated under the race detector. Deadlines inside
# the tests are generous multiples of the election timeout, so a slow CI
# runner re-elects late rather than flaking.
chaos-failover:
	$(GO) test -race -count=2 -timeout 15m ./internal/consensus
	$(GO) test -race -count=2 -timeout 15m -run 'TestReplicated|TestFrameSize' ./internal/coord
	$(GO) test -race -count=2 -timeout 15m \
		-run 'TestChaosFailoverLeaderKilledMidEpoch|TestElasticDepartReshardMidEpoch|TestChaosClusterPeerDiesMidMountBarrier|TestAsymmetricPartition' \
		./internal/live ./internal/chaos

# Pipeline benchmarks, benchstat-friendly: run with BENCHCOUNT repeats
# and pipe the output of two builds into `benchstat old.txt new.txt`.
#   make bench BENCH=BenchmarkLiveEpoch > new.txt
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count=$(BENCHCOUNT) \
		./internal/live ./internal/nvmetcp ./internal/bufpool

# Server engine matrix: legacy goroutine-per-command baseline vs the
# RPQ/SCQ worker pool, staged vs zero-copy, across client queue depths.
bench-target:
	$(GO) test -run '^$$' -bench BenchmarkTargetServe -benchmem -count=$(BENCHCOUNT) \
		./internal/nvmetcp

# Machine-readable live-path measurement: epoch throughput trajectory,
# client and server stage latency quantiles, allocator pressure, and the
# clairvoyant-prefetch cold-vs-warm poll p50. CI uploads the report as a
# build artifact.
bench-json:
	$(GO) run ./cmd/dlfsbench -live -json BENCH_7.json

# Multi-rank cooperative peer cache measurement: per-rank origin wire
# bytes with the cache off vs on (FanStore's once-per-cluster property,
# in numbers). CI uploads the report as a build artifact.
bench-peers:
	$(GO) run ./cmd/dlfsbench -peers -json BENCH_PEERS.json

# Near-data sample assembly measurement: cold-epoch wire bytes and
# throughput on an edge-heavy layout, opReadVec baseline vs server
# assembly vs assembly+crc32c. CI uploads the report as a build
# artifact and cmd/dlfsbench/offload_test.go asserts the committed one.
bench-offload:
	$(GO) run ./cmd/dlfsbench -offload -json BENCH_8.json

# Multi-tenant isolation gate: a paced victim tenant's queue-wait p99
# solo vs under a greedy quota-capped co-tenant. The bench itself exits
# non-zero when the bound is violated, so this target IS the CI gate;
# the committed-report invariants are then re-asserted by
# cmd/dlfsbench/tenants_test.go.
bench-tenants:
	$(GO) run ./cmd/dlfsbench -tenants -json BENCH_TENANTS.json
	$(GO) test -run TestCommittedTenantBenchReport -count=1 ./cmd/dlfsbench

# Checkpoint-ingest gate: interleaved read-epoch vs sharded-save rounds
# on the 2-target config; the bench exits non-zero when the median
# ingest rate falls under the ratio floor or the read-back diverges, so
# this target IS the CI gate; the committed-report invariants are then
# re-asserted by cmd/dlfsbench/checkpoint_test.go.
bench-ckpt:
	$(GO) run ./cmd/dlfsbench -checkpoint -json BENCH_CKPT.json
	$(GO) test -run TestCommittedCkptBenchReport -count=1 ./cmd/dlfsbench

# CI smoke: prove the benchmarks still compile and run one iteration,
# without paying for a real measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkLiveEpoch' -benchtime=1x -count=1 ./internal/live
	$(GO) test -run '^$$' -bench 'BenchmarkTargetServe' -benchtime=1x -count=1 ./internal/nvmetcp

# CI smoke: give each fuzz target 10s on the saved corpus plus fresh
# inputs; long exploratory runs stay manual.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadCapsule -fuzztime 10s ./internal/nvmetcp
	$(GO) test -run '^$$' -fuzz FuzzSampleListFrame -fuzztime 10s ./internal/nvmetcp
	$(GO) test -run '^$$' -fuzz FuzzTenantFrame -fuzztime 10s ./internal/nvmetcp
	$(GO) test -run '^$$' -fuzz FuzzWriteFrame -fuzztime 10s ./internal/nvmetcp
	$(GO) test -run '^$$' -fuzz FuzzScan -fuzztime 10s ./internal/dataset
	$(GO) test -run '^$$' -fuzz FuzzCoordFrame -fuzztime 10s ./internal/coord
	$(GO) test -run '^$$' -fuzz FuzzPeerFrame -fuzztime 10s ./internal/peercache

check: fmt-check vet staticcheck build test race chaos

clean:
	$(GO) clean ./...
