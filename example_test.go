package dlfs_test

import (
	"fmt"
	"log"

	"dlfs"
)

// ExampleSimulation_MountAll mounts DLFS on a simulated 2-node job and
// reads one epoch, verifying every sample.
func ExampleSimulation_MountAll() {
	sim := dlfs.NewSimulation(2)
	defer sim.Close()
	ds := dlfs.GenerateDataset(dlfs.DatasetConfig{
		Label: "ex", Seed: 1, NumSamples: 100, Dist: dlfs.FixedDist(1024),
	})
	fss, err := sim.MountAll(ds, dlfs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	verified := 0
	sim.Go("node1", func(p *dlfs.Proc) {
		for _, it := range fss[1].Sequence(7).DrainAll(p) {
			if dlfs.ChecksumBytes(it.Data) == ds.Checksum(it.Index) {
				verified++
			}
		}
	})
	sim.Run(func(p *dlfs.Proc) {
		for _, it := range fss[0].Sequence(7).DrainAll(p) {
			if dlfs.ChecksumBytes(it.Data) == ds.Checksum(it.Index) {
				verified++
			}
		}
	})
	fmt.Println("verified:", verified)
	// Output: verified: 100
}

// ExampleMountLive runs the real-concurrency path against a TCP block
// target on localhost.
func ExampleMountLive() {
	tgt, err := dlfs.StartTarget("127.0.0.1:0", 64<<20, 32)
	if err != nil {
		log.Fatal(err)
	}
	defer tgt.Close() //nolint:errcheck

	ds := dlfs.GenerateDataset(dlfs.DatasetConfig{
		Label: "ex-live", Seed: 2, NumSamples: 50, Dist: dlfs.FixedDist(2048),
	})
	fs, err := dlfs.MountLive([]string{tgt.Addr}, ds, dlfs.LiveConfig{ChunkSize: 8 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close() //nolint:errcheck

	data, err := fs.ReadSample(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sample 42 intact:", dlfs.ChecksumBytes(data) == ds.Checksum(42))
	// Output: sample 42 intact: true
}

// ExampleFS_Lookup resolves a sample through the in-memory directory.
func ExampleFS_Lookup() {
	sim := dlfs.NewSimulation(1)
	defer sim.Close()
	ds := dlfs.GenerateDataset(dlfs.DatasetConfig{
		Label: "ex-dir", Seed: 3, NumSamples: 10, Dist: dlfs.FixedDist(512),
	})
	fss, err := sim.MountAll(ds, dlfs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(func(p *dlfs.Proc) {
		s := ds.Samples[3]
		entry, err := fss[0].Lookup(p, s.Name, fmt.Sprintf("class%d", s.Class))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("length:", entry.Len(), "cached:", entry.V())
	})
	// Output: length: 512 cached: false
}
