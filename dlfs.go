// Package dlfs is the public API of this repository: a reproduction of
// "Efficient User-Level Storage Disaggregation for Deep Learning"
// (Zhu et al., IEEE CLUSTER 2019) — the Deep Learning File System (DLFS),
// a user-level, read-optimized, ephemeral file system that disaggregates
// NVMe devices to parallel training tasks over NVMe-oF.
//
// Two complete implementations share the directory, sample-entry and
// chunk-planning code:
//
//   - The simulated path (NewSimulation/MountAll) runs the full design —
//     SPDK-style queue pairs, NVMe device and fabric models, kernel-Ext4
//     and Octopus baselines — under a deterministic discrete-event engine,
//     and regenerates every figure of the paper's evaluation
//     (see bench_test.go and cmd/dlfsbench).
//
//   - The live path (MountLive) runs the same client design on goroutines
//     against real TCP block targets (StartTarget), moving real bytes over
//     real sockets.
//
// Quick start (simulated, 4 nodes):
//
//	sim := dlfs.NewSimulation(4)
//	ds := dlfs.GenerateDataset(dlfs.DatasetConfig{Label: "demo", Seed: 1,
//		NumSamples: 1000, Dist: dlfs.ImageNetDist()})
//	fss, err := sim.MountAll(ds, dlfs.DefaultConfig())
//	...
//	sim.Run(func(p *dlfs.Proc) {
//		epoch := fss[0].Sequence(42)
//		for {
//			batch, ok := epoch.NextBatch(p)
//			if !ok { break }
//			train(batch)
//		}
//	})
package dlfs

import (
	"fmt"

	"dlfs/internal/blockdev"
	"dlfs/internal/cluster"
	"dlfs/internal/core"
	"dlfs/internal/dataset"
	"dlfs/internal/live"
	"dlfs/internal/nvme"
	"dlfs/internal/nvmetcp"
	"dlfs/internal/sim"
)

// Core DLFS types (simulated path).
type (
	// Config tunes a DLFS instance; see core.Config for field docs.
	Config = core.Config
	// FS is one compute node's DLFS instance.
	FS = core.FS
	// Epoch is one dlfs_sequence/dlfs_bread pass.
	Epoch = core.Epoch
	// Item is a delivered sample.
	Item = core.Item
	// Handle is an open sample (dlfs_open).
	Handle = core.Handle
	// Stats are per-instance counters.
	Stats = core.Stats
	// Proc is a simulated process; FS methods run on one.
	Proc = sim.Proc
	// Job is the simulated cluster job.
	Job = cluster.Job
)

// Dataset types.
type (
	// Dataset is a synthetic training-set manifest with deterministic
	// contents.
	Dataset = dataset.Dataset
	// DatasetConfig parameterises GenerateDataset.
	DatasetConfig = dataset.Config
	// SizeDist generates sample sizes.
	SizeDist = dataset.SizeDist
)

// Live-path types.
type (
	// LiveFS is the real-concurrency TCP-backed client.
	LiveFS = live.FS
	// LiveConfig tunes it.
	LiveConfig = live.Config
	// LiveEpoch is its batched epoch.
	LiveEpoch = live.Epoch
	// LiveItem is a delivered sample on the live path.
	LiveItem = live.Item
	// LiveStats is the live client's resilience and health snapshot.
	LiveStats = live.Stats
	// DegradedError reports an epoch completed in degraded mode (some
	// targets down, their samples skipped). Match with errors.Is against
	// ErrDegraded.
	DegradedError = live.DegradedError
)

// ErrDegraded marks live reads refused or skipped because a target's
// circuit breaker is open.
var ErrDegraded = live.ErrDegraded

// DefaultConfig returns the paper's DLFS defaults (256 KB chunks, queue
// depth 128, 4 copy threads, chunk batching on).
func DefaultConfig() Config { return core.DefaultConfig() }

// GenerateDataset builds a synthetic dataset manifest.
func GenerateDataset(cfg DatasetConfig) *Dataset { return dataset.Generate(cfg) }

// FixedDist returns a fixed-size sample distribution.
func FixedDist(bytes int) SizeDist { return dataset.Fixed(bytes) }

// ImageNetDist returns the ImageNet-calibrated size distribution (Fig 1).
func ImageNetDist() SizeDist { return dataset.ImageNetDist() }

// IMDBDist returns the IMDB-calibrated size distribution (Fig 1).
func IMDBDist() SizeDist { return dataset.IMDBDist() }

// ChecksumBytes hashes sample contents for end-to-end verification.
func ChecksumBytes(b []byte) uint32 { return dataset.ChecksumBytes(b) }

// Simulation bundles a discrete-event engine with a cluster job: the
// environment the simulated DLFS runs in.
type Simulation struct {
	eng *sim.Engine
	job *cluster.Job
}

// SimOption customises NewSimulation.
type SimOption func(*cluster.NodeSpec)

// WithCores sets CPU cores per node (default 20, the paper's testbed).
func WithCores(n int) SimOption {
	return func(s *cluster.NodeSpec) { s.Cores = n }
}

// WithOptane equips nodes with the real-Optane device model instead of
// the emulated multi-node device.
func WithOptane() SimOption {
	return func(s *cluster.NodeSpec) {
		d := nvme.OptaneSpec()
		s.Device = &d
	}
}

// NewSimulation creates an n-node job on a fresh virtual cluster.
func NewSimulation(n int, opts ...SimOption) *Simulation {
	spec := cluster.DefaultNodeSpec()
	for _, o := range opts {
		o(&spec)
	}
	e := sim.NewEngine()
	return &Simulation{eng: e, job: cluster.NewJob(e, n, spec)}
}

// Job exposes the underlying cluster job.
func (s *Simulation) Job() *cluster.Job { return s.job }

// MountAll performs the collective dlfs_mount on every node and returns
// the per-node instances.
func (s *Simulation) MountAll(ds *Dataset, cfg Config) ([]*FS, error) {
	fss := make([]*FS, s.job.N())
	errs := make([]error, s.job.N())
	for i := 0; i < s.job.N(); i++ {
		i := i
		s.eng.Go(fmt.Sprintf("mount%d", i), func(p *sim.Proc) {
			fss[i], errs[i] = core.Mount(p, s.job, i, ds, cfg)
		})
	}
	s.eng.RunAll()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dlfs: mount node %d: %w", i, err)
		}
	}
	return fss, nil
}

// Run executes fn as a simulated process and drives the virtual clock
// until all scheduled work completes, returning the final virtual time.
func (s *Simulation) Run(fn func(p *Proc)) sim.Time {
	s.eng.Go("user", fn)
	return s.eng.RunAll()
}

// Go starts an additional simulated process without running the clock;
// combine with Run for multi-client scenarios.
func (s *Simulation) Go(name string, fn func(p *Proc)) {
	s.eng.Go(name, fn)
}

// Now reports the current virtual time.
func (s *Simulation) Now() sim.Time { return s.eng.Now() }

// Close releases the simulation's parked process goroutines so the whole
// virtual cluster can be garbage-collected. Call it when building many
// simulations in one process; the simulation is unusable afterwards.
func (s *Simulation) Close() { s.eng.Shutdown() }

// MountLive connects to TCP block targets, uploads the dataset shards and
// builds the directory — the real-socket dlfs_mount.
func MountLive(addrs []string, ds *Dataset, cfg LiveConfig) (*LiveFS, error) {
	return live.Mount(addrs, ds, cfg)
}

// BlockTarget is a running TCP NVMe-oF-style target.
type BlockTarget struct {
	tgt  *nvmetcp.Target
	Addr string
}

// StartTarget starts a TCP block target of the given capacity on addr
// (use "127.0.0.1:0" for an ephemeral port) and returns its handle.
func StartTarget(addr string, capacity int64, depth int) (*BlockTarget, error) {
	tgt := nvmetcp.NewTarget(blockdev.New(capacity), depth)
	bound, err := tgt.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &BlockTarget{tgt: tgt, Addr: bound}, nil
}

// Served reports commands and bytes the target served.
func (b *BlockTarget) Served() (cmds, bytes int64) { return b.tgt.Served() }

// Close stops the target.
func (b *BlockTarget) Close() error { return b.tgt.Close() }
